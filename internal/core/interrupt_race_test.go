package core

import (
	"sync"
	"testing"
	"time"
)

// TestInterruptRaceWithNext hammers Session.Interrupt and
// Session.SetTimeout from other goroutines while the session's own
// goroutine runs long queries — the exact pattern a serving layer uses
// to reap runaway work. Run under -race (the CI core job does), this
// proves the cancellation API's concurrency contract: both calls touch
// only atomics, so they may land at any point of an in-flight Next.
func TestInterruptRaceWithNext(t *testing.T) {
	e, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.Consult(`
		loop(0).
		loop(N) :- N > 0, M is N - 1, loop(M).
	`); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if g%2 == 0 {
					e.Interrupt()
				} else {
					// Alternate arming and disarming tiny deadlines.
					e.SetTimeout(time.Duration(g) * 50 * time.Microsecond)
				}
			}
		}(g)
	}

	// The session goroutine keeps issuing queries; most die with
	// interrupted/timeout balls, which is the expected outcome — the
	// assertion is the race detector staying quiet and the session
	// surviving.
	deadline := time.Now().Add(2 * time.Second)
	queries := 0
	for time.Now().Before(deadline) {
		sols, err := e.Query("loop(2000000)")
		if err == nil {
			for sols.Next() {
			}
			sols.Close()
		}
		queries++
	}
	close(stop)
	wg.Wait()

	if queries == 0 {
		t.Fatal("no queries completed")
	}
	// With the hammer stopped and cancellation cleared, the session must
	// answer normally again.
	e.SetTimeout(0)
	m, ok, err := e.QueryOnce("X is 1 + 2")
	if err != nil || !ok || m["X"].String() != "3" {
		t.Fatalf("session unusable after interrupt hammering: ok=%v err=%v m=%v", ok, err, m)
	}
}
