package core

import (
	"fmt"

	"repro/internal/term"
)

// The typed sub-language (paper §3.2.3: "specific machinery to support a
// strongly typed sub-language" strengthening pre-unification; also the
// "work on data types" of §6). A directive
//
//	:- typed(conn(atom, atom, integer)).
//
// declares attribute types for an external procedure. Clauses stored for a
// typed procedure are checked against the declaration, catching schema
// errors at store time — the moral equivalent of the relational catalog's
// type checking (§2.2) applied to clause heads.

// ArgType is a declared head-argument type.
type ArgType uint8

// Declared argument types.
const (
	// TypeAny admits any term.
	TypeAny ArgType = iota
	// TypeAtom admits atoms.
	TypeAtom
	// TypeInteger admits integers.
	TypeInteger
	// TypeFloat admits floats.
	TypeFloat
	// TypeNumber admits integers and floats.
	TypeNumber
	// TypeList admits lists (including partial lists and []).
	TypeList
	// TypeCompound admits compound terms.
	TypeCompound
)

func (a ArgType) String() string {
	switch a {
	case TypeAny:
		return "any"
	case TypeAtom:
		return "atom"
	case TypeInteger:
		return "integer"
	case TypeFloat:
		return "float"
	case TypeNumber:
		return "number"
	case TypeList:
		return "list"
	case TypeCompound:
		return "compound"
	}
	return "?"
}

func parseArgType(name string) (ArgType, error) {
	switch name {
	case "any", "term":
		return TypeAny, nil
	case "atom":
		return TypeAtom, nil
	case "integer", "int":
		return TypeInteger, nil
	case "float", "real":
		return TypeFloat, nil
	case "number":
		return TypeNumber, nil
	case "list":
		return TypeList, nil
	case "compound", "structure":
		return TypeCompound, nil
	}
	return 0, fmt.Errorf("core: unknown type %q in typed/1 declaration", name)
}

// DeclareTyped records a type signature for name/arity.
func (s *Session) DeclareTyped(name string, types []ArgType) {
	if s.typed == nil {
		s.typed = map[term.Indicator][]ArgType{}
	}
	s.typed[term.Indicator{Name: name, Arity: len(types)}] = types
}

// TypedSignature returns the declared signature, if any.
func (s *Session) TypedSignature(name string, arity int) ([]ArgType, bool) {
	ts, ok := s.typed[term.Indicator{Name: name, Arity: arity}]
	return ts, ok
}

// typedDirective handles :- typed(p(atom, integer, ...)).
func (s *Session) typedDirective(spec term.Term) error {
	c, ok := spec.(*term.Compound)
	if !ok {
		return fmt.Errorf("core: typed/1 expects p(type, ...), got %s", spec)
	}
	types := make([]ArgType, len(c.Args))
	for i, a := range c.Args {
		at, ok := a.(term.Atom)
		if !ok {
			return fmt.Errorf("core: typed/1 argument %d must be a type atom", i+1)
		}
		t, err := parseArgType(string(at))
		if err != nil {
			return err
		}
		types[i] = t
	}
	s.DeclareTyped(c.Functor, types)
	return nil
}

// checkTyped validates a clause head against its declared signature.
// Variables satisfy any type (they are constrained at call time).
func (s *Session) checkTyped(head term.Term) error {
	pi := head.Indicator()
	types, ok := s.typed[pi]
	if !ok {
		return nil
	}
	args := headArgsOf(head)
	for i, a := range args {
		if i >= len(types) {
			break
		}
		if !argHasType(a, types[i]) {
			return fmt.Errorf("core: %s: argument %d (%s) violates declared type %s",
				pi, i+1, a, types[i])
		}
	}
	return nil
}

func argHasType(a term.Term, at ArgType) bool {
	if _, isVar := a.(*term.Var); isVar {
		return true
	}
	switch at {
	case TypeAny:
		return true
	case TypeAtom:
		_, ok := a.(term.Atom)
		return ok
	case TypeInteger:
		_, ok := a.(term.Int)
		return ok
	case TypeFloat:
		_, ok := a.(term.Float)
		return ok
	case TypeNumber:
		switch a.(type) {
		case term.Int, term.Float:
			return true
		}
		return false
	case TypeList:
		if a == term.NilAtom {
			return true
		}
		_, ok := term.IsCons(a)
		return ok
	case TypeCompound:
		_, ok := a.(*term.Compound)
		return ok
	}
	return false
}
