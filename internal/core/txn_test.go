package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/rel"
	"repro/internal/store"
	"repro/internal/store/simfs"
)

// --- Prolog-level transaction/1 ---------------------------------------------

func TestTransactionPrologCommitRollback(t *testing.T) {
	e := newEngine(t, Options{})
	if err := e.ConsultExternal("p(1). p(2)."); err != nil {
		t.Fatal(err)
	}

	// Committed transaction: both asserts land.
	if n, err := e.QueryCount("transaction((assert_external(p(3)), assert_external(p(4))))"); err != nil || n != 1 {
		t.Fatalf("transaction = %d (%v)", n, err)
	}
	if n, _ := e.QueryCount("p(_)"); n != 4 {
		t.Fatalf("after commit: p count = %d, want 4", n)
	}

	// Failing goal: the transaction rolls back, transaction/1 fails.
	if n, err := e.QueryCount("transaction((assert_external(p(5)), fail))"); err != nil || n != 0 {
		t.Fatalf("failing transaction = %d (%v)", n, err)
	}
	if n, _ := e.QueryCount("p(_)"); n != 4 {
		t.Fatalf("after failed txn: p count = %d, want 4", n)
	}

	// Throwing goal: rollback, ball rethrown and catchable outside.
	if n, err := e.QueryCount("catch(transaction((assert_external(p(6)), throw(boom))), boom, true)"); err != nil || n != 1 {
		t.Fatalf("throwing transaction = %d (%v)", n, err)
	}
	if n, _ := e.QueryCount("p(_)"); n != 4 {
		t.Fatalf("after thrown txn: p count = %d, want 4", n)
	}
	if e.Session.InTxn() {
		t.Fatal("transaction left open")
	}

	// Explicit verbs across queries: begin / write / rollback.
	if n, err := e.QueryCount("begin"); err != nil || n != 1 {
		t.Fatalf("begin = %d (%v)", n, err)
	}
	if n, err := e.QueryCount("assert_external(p(7))"); err != nil || n != 1 {
		t.Fatalf("assert in txn = %d (%v)", n, err)
	}
	if n, _ := e.QueryCount("p(7)"); n != 1 {
		t.Fatal("own write invisible inside transaction")
	}
	if n, err := e.QueryCount("rollback"); err != nil || n != 1 {
		t.Fatalf("rollback = %d (%v)", n, err)
	}
	if n, _ := e.QueryCount("p(7)"); n != 0 {
		t.Fatal("rolled-back write still visible")
	}

	// Error mapping: nested begin, stray commit/rollback.
	if n, err := e.QueryCount("catch((begin, begin), error(transaction_error(nested_transaction), educe), rollback)"); err != nil || n != 1 {
		t.Fatalf("nested begin = %d (%v)", n, err)
	}
	if e.Session.InTxn() {
		t.Fatal("transaction left open after nested-begin test")
	}
	if n, err := e.QueryCount("catch(commit, error(transaction_error(no_transaction), educe), true)"); err != nil || n != 1 {
		t.Fatalf("stray commit = %d (%v)", n, err)
	}
	if n, err := e.QueryCount("catch(rollback, error(transaction_error(no_transaction), educe), true)"); err != nil || n != 1 {
		t.Fatalf("stray rollback = %d (%v)", n, err)
	}

	// Counters surfaced through educe_statistics/2.
	commits := values(t, e, "educe_statistics(txn_commits, N)", "N")
	rollbacks := values(t, e, "educe_statistics(txn_rollbacks, N)", "N")
	if len(commits) != 1 || commits[0] == "0" {
		t.Fatalf("txn_commits = %v", commits)
	}
	if len(rollbacks) != 1 || rollbacks[0] == "0" {
		t.Fatalf("txn_rollbacks = %v", rollbacks)
	}
	if got := values(t, e, "educe_statistics(store_read_only, N)", "N"); len(got) != 1 || got[0] != "0" {
		t.Fatalf("store_read_only = %v", got)
	}
}

// --- Go-API rollback restores every layer ------------------------------------

func TestRollbackRestoresAllLayers(t *testing.T) {
	fsys := simfs.New(nil)
	kb, err := OpenKBFS(fsys, Options{StorePath: "kb", PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer kb.Close()
	s, err := kb.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if err := s.ConsultExternal("p(1). p(2). p(3). q(a, 1). q(b, 2)."); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateRelation(rel.Schema{Name: "edge", Attrs: []rel.Attr{
		{Name: "src", Type: rel.String}, {Name: "dst", Type: rel.String},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := s.InsertTuples("edge", []rel.Tuple{
		{rel.StringV("a"), rel.StringV("b")},
		{rel.StringV("b"), rel.StringV("c")},
	}); err != nil {
		t.Fatal(err)
	}
	if err := kb.Flush(); err != nil {
		t.Fatal(err)
	}

	baseStored := kb.DB().Stats().ClausesStored
	baseExt := kb.DB().Ext().Len()
	baseProcs := len(kb.DB().Procs())
	baseEdges := kb.Catalog().Get("edge").Count()

	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	// Mutate every layer: clauses on an existing proc, a brand-new proc
	// with fresh dictionary symbols, a dropped proc, relation inserts,
	// a new relation.
	if err := s.ConsultExternal("p(10). p(11). brandnew(fresh_sym_one, fresh_sym_two)."); err != nil {
		t.Fatal(err)
	}
	if err := s.DropExternal("q", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.InsertTuples("edge", []rel.Tuple{{rel.StringV("c"), rel.StringV("d")}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateRelation(rel.Schema{Name: "tmp", Attrs: []rel.Attr{{Name: "x", Type: rel.Int}}}); err != nil {
		t.Fatal(err)
	}
	// The owner sees its own writes mid-transaction.
	if n, _ := s.QueryCount("p(_)"); n != 5 {
		t.Fatalf("mid-txn p count = %d, want 5", n)
	}
	if kb.DB().Proc("q", 2) != nil {
		t.Fatal("mid-txn: dropped proc still present")
	}

	if err := s.Rollback(); err != nil {
		t.Fatal(err)
	}

	// Every layer is back: clause counts, proc table, dictionary,
	// relations, and the on-page structures all pass Check.
	if err := kb.Check(); err != nil {
		t.Fatalf("Check after rollback: %v", err)
	}
	if got := kb.DB().Stats().ClausesStored; got != baseStored {
		t.Fatalf("clauses stored = %d, want %d", got, baseStored)
	}
	if got := kb.DB().Ext().Len(); got != baseExt {
		t.Fatalf("extdict len = %d, want %d", got, baseExt)
	}
	if got := len(kb.DB().Procs()); got != baseProcs {
		t.Fatalf("procs = %d, want %d", got, baseProcs)
	}
	if kb.DB().Proc("brandnew", 2) != nil {
		t.Fatal("proc created in txn survived rollback")
	}
	if kb.DB().Proc("q", 2) == nil {
		t.Fatal("proc dropped in txn not restored")
	}
	if got := kb.Catalog().Get("edge").Count(); got != baseEdges {
		t.Fatalf("edge count = %d, want %d", got, baseEdges)
	}
	if kb.Catalog().Get("tmp") != nil {
		t.Fatal("relation created in txn survived rollback")
	}
	if n, _ := s.QueryCount("p(_)"); n != 3 {
		t.Fatalf("p count after rollback = %d, want 3", n)
	}
	if n, _ := s.QueryCount("q(X, Y)"); n != 2 {
		t.Fatalf("q count after rollback = %d, want 2", n)
	}

	// The same work committed sticks, and survives reopen from disk.
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := s.ConsultExternal("p(10). p(11)."); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.QueryCount("p(_)"); n != 5 {
		t.Fatalf("p count after commit = %d, want 5", n)
	}
	if err := kb.Close(); err != nil {
		t.Fatal(err)
	}
	kb2, err := OpenKBFS(fsys, Options{StorePath: "kb", PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer kb2.Close()
	s2, err := kb2.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if n, _ := s2.QueryCount("p(_)"); n != 5 {
		t.Fatalf("p count after reopen = %d, want 5", n)
	}
	if err := kb2.Check(); err != nil {
		t.Fatal(err)
	}
}

// --- auto-rollback on timeout and interrupt ----------------------------------

func TestAutoRollbackOnTimeout(t *testing.T) {
	e := newEngine(t, Options{})
	if err := e.ConsultExternal("p(1)."); err != nil {
		t.Fatal(err)
	}
	if err := e.Consult("loop :- loop."); err != nil {
		t.Fatal(err)
	}
	if _, err := e.QueryAll("begin"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.QueryAll("assert_external(p(99))"); err != nil {
		t.Fatal(err)
	}
	e.SetTimeout(50 * time.Millisecond)
	_, err := e.QueryAll("loop")
	e.SetTimeout(0)
	if err == nil || !strings.Contains(err.Error(), "timeout") {
		t.Fatalf("err = %v, want timeout", err)
	}
	if e.Session.InTxn() {
		t.Fatal("transaction survived timeout")
	}
	if n, _ := e.QueryCount("p(99)"); n != 0 {
		t.Fatal("timed-out transaction's write survived")
	}
	if got := values(t, e, "educe_statistics(txn_auto_rollbacks, N)", "N"); len(got) != 1 || got[0] != "1" {
		t.Fatalf("txn_auto_rollbacks = %v", got)
	}
}

func TestAutoRollbackOnInterrupt(t *testing.T) {
	e := newEngine(t, Options{})
	if err := e.ConsultExternal("p(1)."); err != nil {
		t.Fatal(err)
	}
	if err := e.Consult("loop :- loop."); err != nil {
		t.Fatal(err)
	}
	if _, err := e.QueryAll("begin"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.QueryAll("assert_external(p(99))"); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(30 * time.Millisecond)
		e.Interrupt()
	}()
	if _, err := e.QueryAll("loop"); err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("err = %v, want interrupted", err)
	}
	if e.Session.InTxn() {
		t.Fatal("transaction survived interrupt")
	}
	if n, _ := e.QueryCount("p(99)"); n != 0 {
		t.Fatal("interrupted transaction's write survived")
	}
}

func TestAutoRollbackOnSessionClose(t *testing.T) {
	kb, err := OpenKB(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer kb.Close()
	s, err := kb.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ConsultExternal("p(1)."); err != nil {
		t.Fatal(err)
	}
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := s.AssertExternalTerm(mustParseCore(t, "p(2)")); err != nil {
		t.Fatal(err)
	}
	s.Close() // abandons the open transaction

	s2, err := kb.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if n, _ := s2.QueryCount("p(_)"); n != 1 {
		t.Fatalf("p count = %d, want 1 (close must roll back)", n)
	}
}

// --- commit-fault matrix: ENOSPC/EIO must degrade to read-only ---------------

// txnFaultWorkload builds a base KB on fsys, opens a transaction and
// applies its writes, returning the session and the op index where
// commit will start.
func txnFaultWorkload(t *testing.T, fsys *simfs.FS) (*KnowledgeBase, *Session, int) {
	t.Helper()
	kb, err := OpenKBFS(fsys, Options{StorePath: "kb", PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	s, err := kb.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ConsultExternal("p(1). p(2). p(3)."); err != nil {
		t.Fatal(err)
	}
	if err := kb.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := s.ConsultExternal("p(10). p(11). newproc(x)."); err != nil {
		t.Fatal(err)
	}
	return kb, s, 0
}

func TestTxnCommitFaultDegradesKB(t *testing.T) {
	// Probe run: count the durability ops before and during commit.
	probe := simfs.NewCtl(-1)
	kb, s, _ := txnFaultWorkload(t, simfs.New(probe))
	pre := probe.Ops()
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	commitOps := probe.Ops() - pre
	if commitOps < 2 {
		t.Fatalf("commit performed %d ops, expected at least write+sync", commitOps)
	}
	kb.Close()

	for k := 0; k < commitOps; k++ {
		for _, inject := range []error{syscall.ENOSPC, syscall.EIO} {
			t.Run(fmt.Sprintf("op%d/%v", k, inject), func(t *testing.T) {
				ctl := simfs.NewCtl(-1)
				fsys := simfs.New(ctl)
				kb, s, _ := txnFaultWorkload(t, fsys)
				ctl.FailAt(pre+k, inject)

				err := s.Commit()
				if err == nil {
					t.Fatal("commit succeeded through injected fault")
				}
				if !errors.Is(err, inject) {
					t.Fatalf("commit error = %v, want %v", err, inject)
				}
				// The KB degraded to read-only; the transaction rolled
				// back at every layer.
				if !kb.Store().ReadOnly() {
					t.Fatal("store not read-only after failed commit")
				}
				if s.InTxn() {
					t.Fatal("transaction still open after failed commit")
				}
				if n, _ := s.QueryCount("p(_)"); n != 3 {
					t.Fatalf("p count = %d, want 3 (pre-txn)", n)
				}
				if kb.DB().Proc("newproc", 1) != nil {
					t.Fatal("txn-created proc survived failed commit")
				}
				// Reads keep working; writes are refused with ErrReadOnly.
				if err := s.ConsultExternal("p(42)."); !errors.Is(err, store.ErrReadOnly) {
					t.Fatalf("write on read-only KB: %v, want ErrReadOnly", err)
				}
				if err := s.Begin(); !errors.Is(err, store.ErrReadOnly) {
					t.Fatalf("begin on read-only KB: %v, want ErrReadOnly", err)
				}
				// The degraded mode is visible to Prolog, and the write
				// rejection is a catchable transaction_error.
				if got := values2(t, s, "educe_statistics(store_read_only, N)", "N"); len(got) != 1 || got[0] != "1" {
					t.Fatalf("store_read_only = %v", got)
				}
				if n, err := s.QueryCount("catch(assert_external(p(42)), error(transaction_error(read_only), educe), true)"); err != nil || n != 1 {
					t.Fatalf("read_only ball = %d (%v)", n, err)
				}
				kb.Close()

				// Reopening against the (healed) disk finds the intact
				// pre-transaction state: the failed commit left nothing.
				kb2, err := OpenKBFS(fsys, Options{StorePath: "kb", PoolPages: 64})
				if err != nil {
					t.Fatal(err)
				}
				defer kb2.Close()
				if kb2.Store().ReadOnly() {
					t.Fatal("reopened store is read-only")
				}
				s2, err := kb2.NewSession()
				if err != nil {
					t.Fatal(err)
				}
				defer s2.Close()
				if n, _ := s2.QueryCount("p(_)"); n != 3 {
					t.Fatalf("p count after reopen = %d, want 3", n)
				}
				if err := kb2.Check(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestTxnCommitFaultCatchableInProlog drives the same failure through
// the commit/0 builtin: the disk fault surfaces inside the query as
// error(transaction_error(commit_failed), educe).
func TestTxnCommitFaultCatchableInProlog(t *testing.T) {
	probe := simfs.NewCtl(-1)
	kb, s, _ := txnFaultWorkload(t, simfs.New(probe))
	pre := probe.Ops()
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	kb.Close()

	ctl := simfs.NewCtl(-1)
	kb, s, _ = txnFaultWorkload(t, simfs.New(ctl))
	defer kb.Close()
	ctl.FailAt(pre, syscall.ENOSPC)
	n, err := s.QueryCount("catch(commit, error(transaction_error(commit_failed), educe), true)")
	if err != nil || n != 1 {
		t.Fatalf("catch(commit, ...) = %d (%v)", n, err)
	}
	if !kb.Store().ReadOnly() {
		t.Fatal("store not read-only")
	}
	if n, _ := s.QueryCount("p(_)"); n != 3 {
		t.Fatalf("p count = %d, want 3", n)
	}
}

// values2 is values for a bare Session.
func values2(t *testing.T, s *Session, q, v string) []string {
	t.Helper()
	sols, err := s.QueryAll(q)
	if err != nil {
		t.Fatalf("query %s: %v", q, err)
	}
	var out []string
	for _, m := range sols {
		out = append(out, m[v].String())
	}
	return out
}

// --- crash matrix: dying mid-transaction or mid-commit ------------------------

// TestTxnCrashMatrixCore crashes the whole process at every durability
// operation from transaction begin through commit and close, then
// verifies that recovery lands on exactly the pre-transaction snapshot
// or exactly the committed state — never between. The commit marker
// protocol makes the committed state visible if and only if the WAL
// commit record was durably acknowledged, so the decision is read off
// the recovered KB itself: if the transaction's sentinel proc exists,
// everything must.
func TestTxnCrashMatrixCore(t *testing.T) {
	// workload builds the base KB, then runs the transaction. It bails
	// out at the first error (the injected crash); mark, when set, is
	// called at the transaction boundary. The deferred session close
	// rolls back any transaction the crash left open, releasing the KB
	// lock so kb.Close can proceed.
	workload := func(fsys *simfs.FS, mark func()) {
		kb, err := OpenKBFS(fsys, Options{StorePath: "kb", PoolPages: 64})
		if err != nil {
			return
		}
		defer kb.Close()
		s, err := kb.NewSession()
		if err != nil {
			return
		}
		defer s.Close()
		if err := s.ConsultExternal("p(1). p(2). p(3)."); err != nil {
			return
		}
		if err := kb.Flush(); err != nil {
			return
		}
		if mark != nil {
			mark()
		}
		if err := s.Begin(); err != nil {
			return
		}
		if err := s.ConsultExternal("p(10). p(11). newproc(x)."); err != nil {
			return
		}
		_ = s.Commit()
	}

	// Probe: count the durability ops up to the transaction boundary
	// and in total.
	probe := simfs.NewCtl(-1)
	baseOps := -1
	workload(simfs.New(probe), func() { baseOps = probe.Ops() })
	total := probe.Ops()
	if baseOps < 0 || total <= baseOps {
		t.Fatalf("probe did not reach the transaction (base %d, total %d)", baseOps, total)
	}

	for crashAt := baseOps; crashAt <= total; crashAt++ {
		for _, variant := range simfs.Variants {
			t.Run(fmt.Sprintf("crash%d/%s", crashAt, variant), func(t *testing.T) {
				ctl := simfs.NewCtl(crashAt)
				fsys := simfs.New(ctl)
				workload(fsys, nil)

				dead := fsys.Harvest(variant)
				kb, err := OpenKBFS(dead, Options{StorePath: "kb", PoolPages: 64})
				if err != nil {
					t.Fatalf("reopen after crash: %v", err)
				}
				defer kb.Close()
				if err := kb.Check(); err != nil {
					t.Fatalf("Check after crash: %v", err)
				}
				s, err := kb.NewSession()
				if err != nil {
					t.Fatal(err)
				}
				defer s.Close()
				nBase, _ := s.QueryCount("p(_)")
				hasTxn := kb.DB().Proc("newproc", 1) != nil
				switch {
				case hasTxn && nBase == 5:
					// full committed state
				case !hasTxn && nBase == 3:
					// exact pre-transaction snapshot
				default:
					t.Fatalf("recovered state is partial: p=%d txnproc=%v", nBase, hasTxn)
				}
			})
		}
	}
}

// --- satellite 3: concurrent rollback hammer ---------------------------------

// TestTxnRollbackHammer runs one writer session doing
// assert/retract-heavy transactions that all roll back, plus committed
// batches on a second predicate, while seven reader sessions stream
// queries. Readers must never observe a partial transaction: predicate
// p stays at its base count at every instant a reader can look, and
// predicate q only ever grows in whole committed batches. Run with
// -race (the CI txn-fault-matrix job does).
func TestTxnRollbackHammer(t *testing.T) {
	kb, err := OpenKB(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer kb.Close()

	w, err := kb.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.ConsultExternal("p(1). p(2). p(3). p(4). q(0)."); err != nil {
		t.Fatal(err)
	}
	baseStored := kb.DB().Stats().ClausesStored

	const (
		readers   = 7
		rounds    = 25
		batchSize = 3
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, readers+1)

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := kb.NewSession()
			if err != nil {
				errCh <- err
				return
			}
			defer s.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if n, err := s.QueryCount("p(_)"); err != nil || n != 4 {
					errCh <- fmt.Errorf("reader saw p=%d (%v)", n, err)
					return
				}
				if n, err := s.QueryCount("q(_)"); err != nil || (n-1)%batchSize != 0 {
					errCh <- fmt.Errorf("reader saw partial q batch: %d (%v)", n, err)
					return
				}
			}
		}()
	}

	qNext := 1
	for i := 0; i < rounds; i++ {
		// A rolled-back transaction touching p: asserts, a retract, a
		// mid-txn error on odd rounds (auto-rollback path).
		if err := w.Begin(); err != nil {
			t.Fatal(err)
		}
		if err := w.ConsultExternal("p(100). p(101)."); err != nil {
			t.Fatal(err)
		}
		if _, err := w.RetractExternal(mustParseCore(t, "p(1)")); err != nil {
			t.Fatal(err)
		}
		if i%2 == 1 {
			if _, err := w.QueryAll("throw(abort_me)"); err == nil {
				t.Fatal("throw did not error")
			}
			if w.InTxn() {
				t.Fatal("auto-rollback did not fire")
			}
		} else if err := w.Rollback(); err != nil {
			t.Fatal(err)
		}
		if got := kb.DB().Stats().ClausesStored; got != baseStored {
			t.Fatalf("round %d: stored = %d, want %d", i, got, baseStored)
		}
		if err := kb.Check(); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}

		// A committed batch on q, atomic for readers.
		if err := w.Begin(); err != nil {
			t.Fatal(err)
		}
		var batch []string
		for j := 0; j < batchSize; j++ {
			batch = append(batch, fmt.Sprintf("q(%d).", qNext))
			qNext++
		}
		if err := w.ConsultExternal(strings.Join(batch, " ")); err != nil {
			t.Fatal(err)
		}
		if err := w.Commit(); err != nil {
			t.Fatal(err)
		}
		baseStored += batchSize
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if n, _ := w.QueryCount("q(_)"); n != 1+rounds*batchSize {
		t.Fatalf("final q count = %d, want %d", n, 1+rounds*batchSize)
	}
	if err := kb.Check(); err != nil {
		t.Fatal(err)
	}
}
