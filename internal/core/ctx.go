package core

import (
	"context"
	"errors"
	"time"

	"repro/internal/wam"
)

// isWallTimeout reports whether err is the machine's wall-clock
// timeout ball.
func isWallTimeout(err error) bool {
	var ball *wam.ErrBall
	return errors.As(err, &ball) && ball.Term.String() == "error(timeout,educe)"
}

// QueryCtx is Query under a context: the context's deadline (if any, and
// if earlier than whatever deadline the session already has armed) bounds
// the query through the machine's wall-clock deadline, and a context
// already cancelled fails fast. Cancellation *during* solution iteration
// is handled per step by Solutions.NextCtx; pair the two:
//
//	sols, err := s.QueryCtx(ctx, "path(a, X)")
//	for err == nil && sols.NextCtx(ctx) { ... }
//
// The context deadline armed here is restored to its previous value when
// the iteration finishes, so one query's context cannot shorten the next
// query's budget.
func (s *Session) QueryCtx(ctx context.Context, q string) (*Solutions, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sol, err := s.Query(q)
	if err != nil {
		return nil, err
	}
	if d, ok := ctx.Deadline(); ok {
		if cur := s.m.Deadline(); cur.IsZero() || d.Before(cur) {
			sol.prevDeadline = cur
			sol.ctxDeadline = d
			s.m.SetDeadline(d)
		}
	}
	return sol, nil
}

// NextCtx is Next under a context: while the machine resolves, a watcher
// maps ctx cancellation onto Session.Interrupt, aborting the step. When
// the context is the cause of failure, Err reports the context's error
// (context.Canceled / DeadlineExceeded) instead of the Prolog ball the
// abort surfaced as.
func (s *Solutions) NextCtx(ctx context.Context) bool {
	if err := ctx.Err(); err != nil {
		if s.err == nil {
			s.err = err
		}
		s.finish()
		return false
	}
	if ctx.Done() == nil {
		return s.Next()
	}
	done := make(chan struct{})
	fired := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			s.e.m.Interrupt()
			close(fired)
		case <-done:
			close(fired)
		}
	}()
	armed := s.ctxDeadline // finish() clears it before we can look
	ok := s.Next()
	close(done)
	<-fired // watcher has either interrupted or stood down; no stray Interrupt later
	if !ok && ctx.Err() != nil {
		// A step killed by the watcher surfaces as an interrupted/timeout
		// ball; report the cancellation idiomatically at the Go boundary.
		s.err = ctx.Err()
	} else if !ok && !armed.IsZero() && isWallTimeout(s.err) {
		// The machine's deadline — armed by QueryCtx from this very
		// context — can fire a beat before Go's context timer marks the
		// context done; it is still the context's deadline expiring.
		s.err = context.DeadlineExceeded
	}
	if ctx.Err() != nil {
		// The watcher may have fired after Next delivered its solution;
		// drop the pending interrupt so it cannot kill an unrelated later
		// query on this session.
		s.e.m.ClearInterrupt()
	}
	return ok
}

// restoreCtxDeadline undoes QueryCtx's deadline arming at iteration end.
func (s *Solutions) restoreCtxDeadline() {
	if s.ctxDeadline.IsZero() {
		return
	}
	if cur := s.e.m.Deadline(); cur.Equal(s.ctxDeadline) {
		s.e.m.SetDeadline(s.prevDeadline)
	}
	s.ctxDeadline = time.Time{}
}
