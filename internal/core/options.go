package core

import (
	"io"
	"time"

	"repro/internal/obs"
)

// Option configures a Session at creation time. Options consolidate the
// per-feature setters that accumulated on Session (SetTimeout, SetQuota,
// SetTracer, SetSlowThreshold, EnableProfiling, SetRuleStorage,
// educe_strategy/1) into one declarative surface:
//
//	s, err := kb.NewSession(
//	    core.WithTimeout(2*time.Second),
//	    core.WithStrategy(core.StrategySet),
//	)
//
// The old setters remain as thin wrappers for imperative reconfiguration
// between queries; an Option is the same knob applied before the session
// runs anything.
type Option func(*sessionConfig)

// sessionConfig is the merged result of applying Options on top of the
// knowledge base's defaults.
type sessionConfig struct {
	opts        Options
	defTimeout  time.Duration
	quota       *Quota
	tracer      *obs.Tracer
	traceWriter io.Writer
	slowThresh  time.Duration
	profiling   bool
}

// WithOptions replaces the whole session-level Options block (DictSegment,
// DisableGC, DisableIndexing, DisablePreUnification, RuleStorage,
// Strategy; store-level fields are ignored by sessions). Later Options in
// the argument list still apply on top.
func WithOptions(o Options) Option {
	return func(c *sessionConfig) { c.opts = o }
}

// WithRuleStorage selects compiled (Educe*) or source (baseline)
// evaluation for externally stored rules.
func WithRuleStorage(rs RuleStorage) Option {
	return func(c *sessionConfig) { c.opts.RuleStorage = rs }
}

// WithStrategy selects tuple-at-a-time vs set-at-a-time evaluation of
// externally stored rule predicates (see Strategy).
func WithStrategy(st Strategy) Option {
	return func(c *sessionConfig) { c.opts.Strategy = st }
}

// WithTimeout arms a default per-query deadline: every query starts with
// a fresh wall-clock budget of d. Unlike SetTimeout — a one-shot bound
// measured from the moment of the call — the budget re-arms at each
// query start. d <= 0 leaves queries unbounded.
func WithTimeout(d time.Duration) Option {
	return func(c *sessionConfig) { c.defTimeout = d }
}

// WithQuota installs per-query resource caps (see SetQuota).
func WithQuota(q Quota) Option {
	return func(c *sessionConfig) { c.quota = &q }
}

// WithTracer directs per-query trace events to t (see SetTracer).
func WithTracer(t *obs.Tracer) Option {
	return func(c *sessionConfig) { c.tracer = t }
}

// WithTraceWriter is WithTracer with a fresh JSON-lines tracer over w.
func WithTraceWriter(w io.Writer) Option {
	return func(c *sessionConfig) { c.traceWriter = w }
}

// WithSlowThreshold arms the slow-query diagnostic log (see
// SetSlowThreshold).
func WithSlowThreshold(d time.Duration) Option {
	return func(c *sessionConfig) { c.slowThresh = d }
}

// WithProfiling turns the per-predicate 4-port profiler on from the
// session's first query (see EnableProfiling).
func WithProfiling() Option {
	return func(c *sessionConfig) { c.profiling = true }
}

// NewSession creates a session over the shared knowledge base, starting
// from the KB's default Options and applying opts in order.
func (kb *KnowledgeBase) NewSession(opts ...Option) (*Session, error) {
	cfg := sessionConfig{opts: kb.opts}
	for _, o := range opts {
		o(&cfg)
	}
	s, err := kb.NewSessionWithOptions(cfg.opts)
	if err != nil {
		return nil, err
	}
	s.defTimeout = cfg.defTimeout
	if cfg.quota != nil {
		s.SetQuota(*cfg.quota)
	}
	if cfg.traceWriter != nil {
		s.SetTraceWriter(cfg.traceWriter)
	}
	if cfg.tracer != nil {
		s.SetTracer(cfg.tracer)
	}
	if cfg.slowThresh > 0 {
		s.SetSlowThreshold(cfg.slowThresh)
	}
	if cfg.profiling {
		s.EnableProfiling(true)
	}
	return s, nil
}
