package core

import (
	"context"
	"errors"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/store"
)

// solutionSet runs q on s and returns the sorted set of distinct
// solutions, each rendered as "Var=Val" joined by commas — an
// order-insensitive fingerprint for differential comparison. Duplicates
// are collapsed: tuple-at-a-time resolution re-derives the same answer
// once per proof (bag semantics), while the set-at-a-time driver dedups
// by construction (set semantics, DESIGN.md §14); the differential
// contract is on the solution *set*.
func solutionSet(t *testing.T, s *Session, q string) []string {
	t.Helper()
	sols, err := s.QueryAll(q)
	if err != nil {
		t.Fatalf("query %s: %v", q, err)
	}
	seen := map[string]bool{}
	out := make([]string, 0, len(sols))
	for _, m := range sols {
		var names []string
		for n := range m {
			names = append(names, n)
		}
		sort.Strings(names)
		var parts []string
		for _, n := range names {
			parts = append(parts, n+"="+m[n].String())
		}
		fp := strings.Join(parts, ",")
		if !seen[fp] {
			seen[fp] = true
			out = append(out, fp)
		}
	}
	sort.Strings(out)
	return out
}

// diffStrategies runs every query on a fresh tuple-strategy session and a
// fresh set-strategy session over the same KB and requires identical
// order-insensitive solution sets, with the set session actually having
// exercised the set-at-a-time driver.
func diffStrategies(t *testing.T, kb *KnowledgeBase, queries []string) {
	t.Helper()
	before := kb.setopsQueries.Value()
	for _, q := range queries {
		tup, err := kb.NewSession(WithStrategy(StrategyTuple))
		if err != nil {
			t.Fatal(err)
		}
		set, err := kb.NewSession(WithStrategy(StrategySet))
		if err != nil {
			t.Fatal(err)
		}
		want := solutionSet(t, tup, q)
		got := solutionSet(t, set, q)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("query %s: set strategy %v, tuple strategy %v", q, got, want)
		}
		tup.Close()
		set.Close()
	}
	if kb.setopsQueries.Value() == before {
		t.Error("set-strategy sessions never used the set-at-a-time driver")
	}
}

func TestStrategyDifferentialTC(t *testing.T) {
	kb, err := OpenKB(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer kb.Close()
	seed, err := kb.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()
	// Acyclic graph: the tuple-at-a-time baseline diverges on cycles
	// (depth-first resolution re-derives paths forever), so cyclic
	// termination is a set-only property (tested in internal/setops);
	// the differential contract holds where both strategies terminate.
	if err := seed.ConsultExternal(`
		edge(a, b). edge(b, c). edge(c, d). edge(d, e).
		edge(b, f). edge(f, c).
		path(X, Y) :- edge(X, Y).
		path(X, Z) :- edge(X, Y), path(Y, Z).
	`); err != nil {
		t.Fatal(err)
	}
	diffStrategies(t, kb, []string{
		"path(X, Y)", "path(a, X)", "path(X, d)", "path(b, c)", "path(a, zzz)",
	})
}

func TestStrategyDifferentialSameGeneration(t *testing.T) {
	kb, err := OpenKB(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer kb.Close()
	seed, err := kb.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()
	if err := seed.ConsultExternal(`
		node(a). node(b). node(c). node(d). node(e). node(f). node(g).
		par(b, a). par(c, a). par(d, b). par(e, b). par(f, c). par(g, c).
		sg(X, X) :- node(X).
		sg(X, Y) :- par(X, XP), sg(XP, YP), par(Y, YP).
	`); err != nil {
		t.Fatal(err)
	}
	diffStrategies(t, kb, []string{"sg(X, Y)", "sg(d, X)", "sg(d, g)"})
}

func TestStrategyDifferentialAncestor(t *testing.T) {
	kb, err := OpenKB(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer kb.Close()
	seed, err := kb.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()
	if err := seed.ConsultExternal(`
		parent(tom, bob). parent(tom, liz). parent(bob, ann).
		parent(bob, pat). parent(pat, jim). parent(liz, joe).
		ancestor(X, Y) :- parent(X, Y).
		ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).
	`); err != nil {
		t.Fatal(err)
	}
	diffStrategies(t, kb, []string{"ancestor(X, Y)", "ancestor(tom, X)", "ancestor(X, jim)"})
}

// TestStrategyDifferentialUnderTxn checks that set-at-a-time results see
// a transaction's own uncommitted writes, and that a rollback drops them
// from both strategies alike: materialized relations must be rebuilt from
// the restored EDB, not served stale.
func TestStrategyDifferentialUnderTxn(t *testing.T) {
	for _, st := range []Strategy{StrategyTuple, StrategySet} {
		t.Run(st.String(), func(t *testing.T) {
			kb, err := OpenKB(Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer kb.Close()
			s, err := kb.NewSession(WithStrategy(st))
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			if err := s.ConsultExternal(`
				edge(a, b). edge(b, c).
				path(X, Y) :- edge(X, Y).
				path(X, Z) :- edge(X, Y), path(Y, Z).
			`); err != nil {
				t.Fatal(err)
			}
			base := solutionSet(t, s, "path(a, X)")
			if want := []string{"X=b", "X=c"}; !reflect.DeepEqual(base, want) {
				t.Fatalf("pre-txn path(a,X) = %v, want %v", base, want)
			}

			if err := s.Begin(); err != nil {
				t.Fatal(err)
			}
			if err := s.AssertExternalTerm(mustParseCore(t, "edge(c, d)")); err != nil {
				t.Fatal(err)
			}
			inTxn := solutionSet(t, s, "path(a, X)")
			if want := []string{"X=b", "X=c", "X=d"}; !reflect.DeepEqual(inTxn, want) {
				t.Fatalf("in-txn path(a,X) = %v, want %v", inTxn, want)
			}
			if err := s.Rollback(); err != nil {
				t.Fatal(err)
			}
			after := solutionSet(t, s, "path(a, X)")
			if !reflect.DeepEqual(after, base) {
				t.Fatalf("post-rollback path(a,X) = %v, want %v", after, base)
			}
		})
	}
}

// TestSetRuleStorageGuard pins the repaired SetRuleStorage contract: a
// no-op switch succeeds silently, switching modes inside an open
// transaction is rejected with store.ErrTxnOpen, and a successful switch
// drops loaded code so the next query resolves in the new mode.
func TestSetRuleStorageGuard(t *testing.T) {
	e := newEngine(t, Options{})
	if err := e.ConsultExternal(`
		edge(a, b). edge(b, c).
		path(X, Y) :- edge(X, Y).
		path(X, Z) :- edge(X, Y), path(Y, Z).
	`); err != nil {
		t.Fatal(err)
	}
	if got := sessionValues(t, e.Session, "path(a, X)", "X"); len(got) != 2 {
		t.Fatalf("compiled path(a,X) = %v", got)
	}

	if err := e.SetRuleStorage(RuleStorageCompiled); err != nil {
		t.Fatalf("no-op switch: %v", err)
	}

	if err := e.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := e.SetRuleStorage(RuleStorageSource); !errors.Is(err, store.ErrTxnOpen) {
		t.Fatalf("switch inside txn: err = %v, want store.ErrTxnOpen", err)
	}
	if e.RuleStorage() != RuleStorageCompiled {
		t.Fatal("rejected switch still changed the mode")
	}
	if err := e.Rollback(); err != nil {
		t.Fatal(err)
	}

	if err := e.SetRuleStorage(RuleStorageSource); err != nil {
		t.Fatalf("switch between queries: %v", err)
	}
	// Rule storage selects the *storage format* at consult time, so the
	// switch governs newly consulted predicates; path/2 above remains
	// compiled-form and is no longer evaluable. New source-form rules
	// must run on the baseline interpreter.
	if err := e.ConsultExternal(`
		link(x, y). link(y, z).
		reach(A, B) :- link(A, B).
		reach(A, C) :- link(A, B), reach(B, C).
	`); err != nil {
		t.Fatal(err)
	}
	got := sessionValues(t, e.Session, "reach(x, V)", "V")
	sort.Strings(got)
	if want := []string{"y", "z"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("baseline reach(x,V) after switch = %v", got)
	}
	if e.Stats().Phases.Asserts == 0 {
		t.Fatal("post-switch query did not run on the baseline interpreter")
	}
}

// values on a plain Session (the engine_test helper takes *Engine).
func sessionValues(t *testing.T, s *Session, q, v string) []string {
	t.Helper()
	sols, err := s.QueryAll(q)
	if err != nil {
		t.Fatalf("query %s: %v", q, err)
	}
	var out []string
	for _, m := range sols {
		out = append(out, m[v].String())
	}
	return out
}

func TestQueryCtxCancellation(t *testing.T) {
	e := newEngine(t, Options{})
	if err := e.Consult("loop :- loop."); err != nil {
		t.Fatal(err)
	}

	// Pre-cancelled context fails fast at Query time.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.QueryCtx(cancelled, "loop"); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled QueryCtx err = %v", err)
	}

	// Cancellation mid-resolution interrupts the machine and surfaces as
	// the context's error.
	ctx, cancel2 := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel2()
	}()
	sols, err := e.QueryCtx(ctx, "loop")
	if err != nil {
		t.Fatal(err)
	}
	if sols.NextCtx(ctx) {
		t.Fatal("divergent goal produced a solution")
	}
	if err := sols.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled NextCtx err = %v, want context.Canceled", err)
	}

	// The session survives and later queries are unaffected.
	if err := e.Consult("ok(yes)."); err != nil {
		t.Fatal(err)
	}
	if got := sessionValues(t, e.Session, "ok(X)", "X"); !reflect.DeepEqual(got, []string{"yes"}) {
		t.Fatalf("post-cancel query = %v", got)
	}
}

func TestQueryCtxDeadline(t *testing.T) {
	e := newEngine(t, Options{})
	if err := e.Consult("loop :- loop."); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	sols, err := e.QueryCtx(ctx, "loop")
	if err != nil {
		t.Fatal(err)
	}
	if sols.NextCtx(ctx) {
		t.Fatal("divergent goal produced a solution")
	}
	if err := sols.Err(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline NextCtx err = %v, want context.DeadlineExceeded", err)
	}
	// The expired context deadline must not bound the next query.
	if err := e.Consult("ok(yes)."); err != nil {
		t.Fatal(err)
	}
	if got := sessionValues(t, e.Session, "ok(X)", "X"); !reflect.DeepEqual(got, []string{"yes"}) {
		t.Fatalf("post-deadline query = %v", got)
	}
}

// TestWithTimeoutRearms checks the WithTimeout option: each query gets a
// fresh budget (unlike the one-shot SetTimeout), so a slow query dies
// while later cheap queries on the same session run unbounded by the
// first query's wall-clock instant.
func TestWithTimeoutRearms(t *testing.T) {
	kb, err := OpenKB(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer kb.Close()
	s, err := kb.NewSession(WithTimeout(60 * time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Consult("loop :- loop. ok(yes)."); err != nil {
		t.Fatal(err)
	}
	sols, err := s.Query("loop")
	if err != nil {
		t.Fatal(err)
	}
	if sols.Next() {
		t.Fatal("divergent goal produced a solution")
	}
	if sols.Err() == nil {
		t.Fatal("timed-out query reported no error")
	}
	// Sleep past the first query's deadline instant; the next query must
	// still succeed because its budget re-arms at query start.
	time.Sleep(80 * time.Millisecond)
	if got := sessionValues(t, s, "ok(X)", "X"); !reflect.DeepEqual(got, []string{"yes"}) {
		t.Fatalf("re-armed query = %v", got)
	}
}

// TestEduceStrategyBuiltin drives the educe_strategy/1 control builtin:
// reading the current strategy, switching it, and rejecting unknown
// atoms.
func TestEduceStrategyBuiltin(t *testing.T) {
	e := newEngine(t, Options{})
	if got := sessionValues(t, e.Session, "educe_strategy(S)", "S"); !reflect.DeepEqual(got, []string{"auto"}) {
		t.Fatalf("default strategy = %v", got)
	}
	if n, err := e.QueryCount("educe_strategy(set)"); err != nil || n != 1 {
		t.Fatalf("educe_strategy(set): n=%d err=%v", n, err)
	}
	if got := sessionValues(t, e.Session, "educe_strategy(S)", "S"); !reflect.DeepEqual(got, []string{"set"}) {
		t.Fatalf("strategy after switch = %v", got)
	}
	if e.Strategy() != StrategySet {
		t.Fatalf("Session.Strategy() = %v after educe_strategy(set)", e.Strategy())
	}
	if _, err := e.QueryAll("educe_strategy(bogus)"); err == nil {
		t.Fatal("educe_strategy(bogus) succeeded")
	}
}

// TestStrategyAutoRecursiveOnly pins StrategyAuto's scope: recursive
// predicates go through the set-at-a-time driver, non-recursive stored
// rules stay on the tuple-at-a-time WAM path.
func TestStrategyAutoRecursiveOnly(t *testing.T) {
	kb, err := OpenKB(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer kb.Close()
	s, err := kb.NewSession() // default StrategyAuto
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.ConsultExternal(`
		edge(a, b). edge(b, c).
		hop2(X, Z) :- edge(X, Y), edge(Y, Z).
		path(X, Y) :- edge(X, Y).
		path(X, Z) :- edge(X, Y), path(Y, Z).
	`); err != nil {
		t.Fatal(err)
	}
	before := kb.setopsQueries.Value()
	if got := sessionValues(t, s, "hop2(a, X)", "X"); !reflect.DeepEqual(got, []string{"c"}) {
		t.Fatalf("hop2(a,X) = %v", got)
	}
	if kb.setopsQueries.Value() != before {
		t.Error("auto strategy used the set driver for a non-recursive predicate")
	}
	got := sessionValues(t, s, "path(a, X)", "X")
	sort.Strings(got)
	if want := []string{"b", "c"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("path(a,X) = %v", got)
	}
	if kb.setopsQueries.Value() == before {
		t.Error("auto strategy did not use the set driver for a recursive predicate")
	}
}

// TestSetStrategyInvalidation checks that a materialized set-at-a-time
// result is rebuilt after the underlying EDB facts change.
func TestSetStrategyInvalidation(t *testing.T) {
	kb, err := OpenKB(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer kb.Close()
	s, err := kb.NewSession(WithStrategy(StrategySet))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.ConsultExternal(`
		edge(a, b).
		path(X, Y) :- edge(X, Y).
		path(X, Z) :- edge(X, Y), path(Y, Z).
	`); err != nil {
		t.Fatal(err)
	}
	if got := solutionSet(t, s, "path(a, X)"); !reflect.DeepEqual(got, []string{"X=b"}) {
		t.Fatalf("path(a,X) = %v", got)
	}
	if err := s.AssertExternalTerm(mustParseCore(t, "edge(b, c)")); err != nil {
		t.Fatal(err)
	}
	got := solutionSet(t, s, "path(a, X)")
	if want := []string{"X=b", "X=c"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("path(a,X) after assert = %v, want %v", got, want)
	}
}
