package core

import (
	"fmt"
	"sort"

	"repro/internal/compiler"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/term"
	"repro/internal/wam"
)

// registerEngineBuiltins adds builtins that need the compiler: the dynamic
// database (assert/retract — §2 item 3 of the paper stresses how expensive
// these are, and here assert really does run the incremental compiler) and
// clause inspection.
func (s *Session) registerEngineBuiltins() {
	m := s.m

	m.RegisterBuiltin(wam.Builtin{Name: "assert", Arity: 1, Fn: s.biAssert(false)})
	m.RegisterBuiltin(wam.Builtin{Name: "assertz", Arity: 1, Fn: s.biAssert(false)})
	m.RegisterBuiltin(wam.Builtin{Name: "asserta", Arity: 1, Fn: s.biAssert(true)})
	m.RegisterBuiltin(wam.Builtin{Name: "retract", Arity: 1, Fn: s.biRetract})
	m.RegisterBuiltin(wam.Builtin{Name: "abolish", Arity: 1, Fn: s.biAbolish})
	m.RegisterBuiltin(wam.Builtin{Name: "clause", Arity: 2, Fn: s.biClause})
	m.RegisterBuiltin(wam.Builtin{Name: "educe_statistics", Arity: 2, Fn: s.biStatistics})
	m.RegisterBuiltin(wam.Builtin{Name: "educe_profile", Arity: 2, Fn: s.biProfile})
	m.RegisterBuiltin(wam.Builtin{Name: "begin", Arity: 0, Fn: s.biBegin})
	m.RegisterBuiltin(wam.Builtin{Name: "commit", Arity: 0, Fn: s.biCommit})
	m.RegisterBuiltin(wam.Builtin{Name: "rollback", Arity: 0, Fn: s.biRollback})
	m.RegisterBuiltin(wam.Builtin{Name: "assert_external", Arity: 1, Fn: s.biAssertExternal})
	m.RegisterBuiltin(wam.Builtin{Name: "retract_external", Arity: 1, Fn: s.biRetractExternal})
	m.RegisterBuiltin(wam.Builtin{Name: "educe_strategy", Arity: 1, Fn: s.biStrategy})
}

// biStatistics exposes engine counters to Prolog:
// educe_statistics(Key, Value) with keys instructions, calls,
// choice_points, choice_points_elided, gc_runs, gc_pause_ns, heap_peak,
// edb_retrievals, edb_candidates, io_accesses, io_hits, io_reads,
// io_writes, io_evictions, io_latch_waits, io_latch_wait_ns,
// pool_shards, session_io_accesses, session_io_reads, session_io_writes,
// dict_entries, dict_hits, dict_misses, code_cache_hits,
// code_cache_misses, preunify_scanned, preunify_passed, pages_touched,
// asserts, txn_commits, txn_rollbacks, txn_auto_rollbacks,
// store_read_only, and the per-phase nanosecond totals parse_ns, compile_ns,
// edb_fetch_ns, preunify_ns, link_ns, exec_ns, gc_ns, store_ns — the
// statistics/1-style view of the paper's §3.1/§5 cost breakdowns.
func (s *Session) biStatistics(m *wam.Machine, args []wam.Cell) (bool, error) {
	st := s.Stats()
	stats := map[string]int64{
		"instructions":         int64(st.Machine.Instructions),
		"calls":                int64(st.Machine.Calls),
		"choice_points":        int64(st.Machine.ChoicePoints),
		"choice_points_elided": int64(st.Machine.ChoicePointsElided),
		"gc_runs":              int64(st.Machine.GCRuns),
		"gc_pause_ns":          int64(st.Machine.GCPauseNS),
		"heap_peak":            int64(st.Machine.HeapPeak),
		"edb_retrievals":       int64(st.EDB.Retrievals),
		"edb_candidates":       int64(st.EDB.CandidatesReturned),
		"io_accesses":          int64(st.IO.Accesses),
		"io_hits":              int64(st.IO.Hits),
		"io_reads":             int64(st.IO.Reads),
		"io_writes":            int64(st.IO.Writes),
		"io_evictions":         int64(st.IO.Evictions),
		"io_latch_waits":       int64(st.IO.LatchWaits),
		"io_latch_wait_ns":     int64(st.IO.LatchWaitNS),
		"pool_shards":          int64(s.kb.st.Pool().Shards()),
		"session_io_accesses":  int64(st.SessionIO.Accesses),
		"session_io_reads":     int64(st.SessionIO.Reads),
		"session_io_writes":    int64(st.SessionIO.Writes),
		"dict_entries":         int64(st.Dict.Live),
		"dict_hits":            int64(st.Dict.Hits),
		"dict_misses":          int64(st.Dict.Misses),
		"code_cache_hits":      int64(st.Cost.CacheHits),
		"code_cache_misses":    int64(st.Cost.CacheMisses),
		"preunify_scanned":     int64(st.Cost.ClausesScanned),
		"preunify_passed":      int64(st.Cost.ClausesPassed),
		"pages_touched":        int64(st.Cost.PagesTouched),
		"asserts":              int64(st.Cost.Asserts),
		"txn_commits":          int64(s.kb.txnCommits.Value()),
		"txn_rollbacks":        int64(s.kb.txnRollbacks.Value()),
		"txn_auto_rollbacks":   int64(s.kb.txnAutoRollbacks.Value()),
		"store_read_only":      0,
	}
	if s.kb.st.ReadOnly() {
		stats["store_read_only"] = 1
	}
	for _, p := range obs.QueryPhases() {
		stats[p.String()+"_ns"] = st.Cost.Phases[p]
	}
	stats["store_ns"] = st.Cost.Phases[obs.PhaseStore]
	key := m.Deref(args[0])
	if key.Tag() == wam.TagCon {
		v, ok := stats[m.Dict.Name(key.AtomID())]
		if !ok {
			return false, nil
		}
		return m.Unify(args[1], wam.MakeInt(v)), nil
	}
	// Unbound key: enumerate.
	names := make([]string, 0, len(stats))
	for k := range stats {
		names = append(names, k)
	}
	sort.Strings(names)
	i := 0
	redo := func(m *wam.Machine) (bool, error) {
		for i < len(names) {
			k := names[i]
			i++
			ok := m.TryUnify(func() bool {
				return m.Unify(m.Reg(0), wam.MakeCon(m.Dict.Intern(k, 0))) &&
					m.Unify(m.Reg(1), wam.MakeInt(stats[k]))
			})
			if ok {
				return true, nil
			}
		}
		return false, nil
	}
	m.PushRedo(redo)
	return redo(m)
}

// biProfile exposes the knowledge base's per-predicate profile to
// Prolog: educe_profile(Key, Value) with one key per counter of each
// profiled predicate — '<name>/<arity>.calls', '.exits', '.redos',
// '.fails', '.self_ns', '.edb_fetches', '.pages' — plus the aggregate
// 'total.*' keys. It reads the same KB-wide table as /debug/profile
// (queries completed by any profiled session; the in-flight query's
// counters are merged at its end), so the two views always agree.
func (s *Session) biProfile(m *wam.Machine, args []wam.Cell) (bool, error) {
	rows := s.kb.profile.Snapshot()
	stats := make(map[string]int64, len(rows)*7+7)
	add := func(prefix string, c *obs.PredCounters) {
		stats[prefix+".calls"] = int64(c.Calls)
		stats[prefix+".exits"] = int64(c.Exits)
		stats[prefix+".redos"] = int64(c.Redos)
		stats[prefix+".fails"] = int64(c.Fails)
		stats[prefix+".self_ns"] = c.SelfNS
		stats[prefix+".edb_fetches"] = int64(c.EDBFetches)
		stats[prefix+".pages"] = int64(c.Pages)
	}
	for i := range rows {
		add(rows[i].Pred, &rows[i].PredCounters)
	}
	totals := s.kb.profile.Totals()
	add("total", &totals)
	key := m.Deref(args[0])
	if key.Tag() == wam.TagCon {
		v, ok := stats[m.Dict.Name(key.AtomID())]
		if !ok {
			return false, nil
		}
		return m.Unify(args[1], wam.MakeInt(v)), nil
	}
	names := make([]string, 0, len(stats))
	for k := range stats {
		names = append(names, k)
	}
	sort.Strings(names)
	i := 0
	redo := func(m *wam.Machine) (bool, error) {
		for i < len(names) {
			k := names[i]
			i++
			ok := m.TryUnify(func() bool {
				return m.Unify(m.Reg(0), wam.MakeCon(m.Dict.Intern(k, 0))) &&
					m.Unify(m.Reg(1), wam.MakeInt(stats[k]))
			})
			if ok {
				return true, nil
			}
		}
		return false, nil
	}
	m.PushRedo(redo)
	return redo(m)
}

func (s *Session) biAssert(front bool) wam.BuiltinFn {
	return func(m *wam.Machine, args []wam.Cell) (bool, error) {
		t := m.DecodeTerm(args[0])
		if err := s.AssertTerm(t, front); err != nil {
			return false, err
		}
		return true, nil
	}
}

// ensureDyn registers pi as a dynamic predicate (initially empty).
func (s *Session) ensureDyn(pi term.Indicator) *dynPred {
	if dp, ok := s.dyn[pi]; ok {
		return dp
	}
	dp := &dynPred{}
	s.dyn[pi] = dp
	s.relinkDyn(pi, dp)
	return dp
}

// AssertTerm adds a clause to a dynamic in-memory predicate, compiling it
// immediately (the incremental compiler at work).
func (s *Session) AssertTerm(t term.Term, front bool) error {
	head, _ := splitClauseTerm(t)
	pi := head.Indicator()
	if pi.Name == "" {
		return fmt.Errorf("core: cannot assert %s", t)
	}
	ccs, err := s.comp.CompileClause(t)
	if err != nil {
		return err
	}
	dp := s.ensureDyn(pi)
	if front {
		dp.terms = append([]term.Term{t}, dp.terms...)
		dp.clauses = append([][]compiler.ClauseCode{ccs}, dp.clauses...)
	} else {
		dp.terms = append(dp.terms, t)
		dp.clauses = append(dp.clauses, ccs)
	}
	// Auxiliary predicates get unique names; install them permanently.
	for _, cc := range ccs[1:] {
		if err := s.link(cc.Pred, []compiler.ClauseCode{cc}, false); err != nil {
			return err
		}
	}
	return s.relinkDyn(pi, dp)
}

// relinkDyn rebuilds a dynamic predicate's code from its clause list.
func (s *Session) relinkDyn(pi term.Indicator, dp *dynPred) error {
	main := make([]compiler.ClauseCode, 0, len(dp.clauses))
	for _, unit := range dp.clauses {
		main = append(main, unit[0])
	}
	if err := s.link(pi, main, false); err != nil {
		return err
	}
	fn := s.m.Dict.Intern(pi.Name, pi.Arity)
	if p := s.m.Proc(fn); p != nil {
		p.Dynamic = true
	}
	return nil
}

func (s *Session) biRetract(m *wam.Machine, args []wam.Cell) (bool, error) {
	t := m.DecodeTerm(args[0])
	head, body := splitClauseTerm(t)
	pi := head.Indicator()
	dp, ok := s.dyn[pi]
	if !ok {
		return false, nil
	}
	env := interp.NewEnv()
	for i, ct := range dp.terms {
		mark := env.Mark()
		r := term.Rename(ct)
		rh, rb := splitClauseTerm(r)
		if env.Unify(head, rh) && env.Unify(body, rb) {
			dp.terms = append(append([]term.Term{}, dp.terms[:i]...), dp.terms[i+1:]...)
			dp.clauses = append(append([][]compiler.ClauseCode{}, dp.clauses[:i]...), dp.clauses[i+1:]...)
			if err := s.relinkDyn(pi, dp); err != nil {
				return false, err
			}
			// Transfer bindings to the WAM by unifying the caller's
			// term with the matched (renamed) clause.
			matched := term.Comp(":-", rh, rb)
			var matchCell wam.Cell
			if _, isRule := t.(*term.Compound); isRule && t.Indicator() == (term.Indicator{Name: ":-", Arity: 2}) {
				matchCell = m.EncodeTerm(matched, map[*term.Var]wam.Cell{})
			} else {
				matchCell = m.EncodeTerm(rh, map[*term.Var]wam.Cell{})
			}
			return m.Unify(args[0], matchCell), nil
		}
		env.Undo(mark)
	}
	return false, nil
}

func (s *Session) biAbolish(m *wam.Machine, args []wam.Cell) (bool, error) {
	t := m.DecodeTerm(args[0])
	pi, err := parseIndicator(t)
	if err != nil {
		return false, err
	}
	delete(s.dyn, pi)
	s.m.RemoveProc(s.m.Dict.Intern(pi.Name, pi.Arity))
	return true, nil
}

// biClause enumerates clauses of a dynamic predicate: clause(Head, Body).
func (s *Session) biClause(m *wam.Machine, args []wam.Cell) (bool, error) {
	headT := m.DecodeTerm(args[0])
	pi := headT.Indicator()
	if pi.Name == "" {
		return false, fmt.Errorf("core: clause/2: head must be callable")
	}
	dp, ok := s.dyn[pi]
	if !ok {
		return false, nil
	}
	// Snapshot the clause list; enumeration is over this snapshot.
	terms := append([]term.Term{}, dp.terms...)
	i := 0
	redo := func(m *wam.Machine) (bool, error) {
		for i < len(terms) {
			ct := terms[i]
			i++
			r := term.Rename(ct)
			rh, rb := splitClauseTerm(r)
			env := map[*term.Var]wam.Cell{}
			hc := m.EncodeTerm(rh, env)
			bc := m.EncodeTerm(rb, env)
			ok := m.TryUnify(func() bool {
				return m.Unify(m.Reg(0), hc) && m.Unify(m.Reg(1), bc)
			})
			if ok {
				return true, nil
			}
		}
		return false, nil
	}
	m.PushRedo(redo)
	return redo(m)
}
