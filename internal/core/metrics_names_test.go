package core

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateMetricsGolden = flag.Bool("update", false, "rewrite golden files")

// TestKBMetricsSchemaGolden pins the knowledge-base registry's metric
// names — the monitoring contract the -metrics dump and dashboards
// parse — including the transaction and read-only robustness counters
// (core.txn.commits/rollbacks/auto_rollbacks, store.read_only). Run
// with -update to regenerate after an intentional schema change.
func TestKBMetricsSchemaGolden(t *testing.T) {
	kb, err := OpenKB(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer kb.Close()

	// The in-memory KB registers a stable name set (no WAL or per-shard
	// file metrics vary with it); keep only the core.* and setops.* names
	// so store-layer shape changes do not churn this golden too.
	var names []string
	for _, n := range kb.Obs().Names() {
		if strings.HasPrefix(n, "core.") || strings.HasPrefix(n, "setops.") {
			names = append(names, n)
		}
	}
	got := strings.Join(names, "\n") + "\n"
	golden := filepath.Join("testdata", "metrics_names.golden")
	if *updateMetricsGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("core metric names diverged from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	for _, must := range []string{
		"core.txn.commits", "core.txn.rollbacks", "core.txn.auto_rollbacks",
		"setops.queries", "setops.fallbacks", "setops.iterations",
		"setops.delta_tuples", "setops.pages_read",
	} {
		if !strings.Contains(got, must+"\n") {
			t.Errorf("transaction counter %s missing from KB registry", must)
		}
	}
}
