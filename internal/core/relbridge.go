package core

import (
	"fmt"

	"repro/internal/rel"
	"repro/internal/store"
	"repro/internal/wam"
)

// CreateRelation registers a relation in the catalog, under the KB write
// lock.
func (s *Session) CreateRelation(schema rel.Schema) (*rel.Relation, error) {
	unlock := s.wlock()
	defer unlock()
	return s.kb.cat.Create(schema)
}

// InsertTuples appends tuples to a stored relation under the session's
// write lock, so the write participates in the session's open
// transaction (KnowledgeBase.InsertTuples would deadlock against the
// transaction's own lock).
func (s *Session) InsertTuples(name string, ts []rel.Tuple) error {
	if s.kb.st.ReadOnly() {
		return store.ErrReadOnly
	}
	unlock := s.wlock()
	defer unlock()
	r := s.kb.cat.Get(name)
	if r == nil {
		return fmt.Errorf("core: no relation %s", name)
	}
	return r.InsertAll(ts)
}

// Relation fetches a relation by name. It goes through the session's
// rlock so it stays safe inside an open transaction (which already
// holds the KB lock exclusively).
func (s *Session) Relation(name string) *rel.Relation {
	unlock := s.rlock()
	defer unlock()
	return s.kb.cat.Get(name)
}

// BindRelation exposes a stored relation as a Prolog predicate of the same
// name and arity, implemented as a nondeterministic cursor over the record
// manager — the deterministic low-level interface of §3.2.1 wrapped in a
// single choice point. When an argument with an index is bound, the cursor
// uses an index scan (choice-point elision for selective access); otherwise
// it scans sequentially, filtering on whatever arguments are bound.
//
// This is the term-oriented face of the dual evaluation strategy (§4); the
// set-oriented face is the rel package's operator tree. The cursor takes
// the KB read lock around each step, so concurrent sessions can drive
// cursors over the same stored relation.
func (s *Session) BindRelation(name string) error {
	unlock := s.rlock()
	r := s.kb.cat.Get(name)
	unlock()
	if r == nil {
		return fmt.Errorf("core: no relation %s", name)
	}
	arity := len(r.Schema.Attrs)
	cursor := func(m *wam.Machine, args []wam.Cell) (bool, error) {
		// Snapshot bound argument values.
		type boundArg struct {
			pos int
			val rel.Value
		}
		var bound []boundArg
		for i := 0; i < arity; i++ {
			if v, ok := s.cellToRelValue(m.Deref(m.Reg(i)), r.Schema.Attrs[i].Type); ok {
				bound = append(bound, boundArg{pos: i, val: v})
			}
		}
		// Pick an access path: an indexed bound attribute if available.
		var it rel.Iterator
		usedIndex := -1
		unlock := s.rlock()
		for _, ba := range bound {
			if r.HasIndex(r.Schema.Attrs[ba.pos].Name) {
				it = rel.IndexScan(r, r.Schema.Attrs[ba.pos].Name, ba.val, ba.val)
				usedIndex = ba.pos
				break
			}
		}
		if it == nil {
			it = rel.SeqScan(r)
		}
		unlock()
		// Residual filter over the remaining bound attributes.
		filter := make([]boundArg, 0, len(bound))
		for _, ba := range bound {
			if ba.pos != usedIndex {
				filter = append(filter, ba)
			}
		}
		redo := func(m *wam.Machine) (bool, error) {
			for {
				unlock := s.rlock()
				t, err := it.Next()
				unlock()
				if err != nil {
					it.Close()
					return false, err
				}
				if t == nil {
					it.Close()
					return false, nil
				}
				match := true
				for _, ba := range filter {
					if t[ba.pos].Compare(ba.val) != 0 {
						match = false
						break
					}
				}
				if !match {
					continue
				}
				ok := m.TryUnify(func() bool {
					for i := 0; i < arity; i++ {
						if !m.Unify(m.Reg(i), s.relValueToCell(t[i])) {
							return false
						}
					}
					return true
				})
				if ok {
					return true, nil
				}
			}
		}
		m.PushRedo(redo)
		return redo(m)
	}

	idx := s.m.RegisterBuiltin(wam.Builtin{Name: "$rel_" + name, Arity: arity, Fn: cursor})
	// Also install the relation under its own name.
	blk := s.m.AddBlock(&wam.CodeBlock{
		Name: fmt.Sprintf("$relation %s/%d", name, arity),
		Instrs: []wam.Instr{
			{Op: wam.OpBuiltin, N: int32(idx), Ar: int32(arity)},
			{Op: wam.OpProceed},
		},
	})
	fn := s.m.Dict.Intern(name, arity)
	s.m.DefineProc(&wam.Proc{Fn: fn, Arity: arity, Block: blk})
	return nil
}

// cellToRelValue converts a bound cell to a relational value of the
// attribute's type; ok is false for unbound or mismatched cells.
func (s *Session) cellToRelValue(c wam.Cell, typ rel.Type) (rel.Value, bool) {
	switch c.Tag() {
	case wam.TagInt:
		if typ == rel.Int {
			return rel.IntV(c.IntVal()), true
		}
	case wam.TagFlt:
		if typ == rel.Float {
			return rel.FloatV(s.m.Float(c)), true
		}
	case wam.TagCon:
		if typ == rel.String {
			return rel.StringV(s.m.Dict.Name(c.AtomID())), true
		}
	}
	return rel.Value{}, false
}

// relValueToCell converts a relational value to a heap cell.
func (s *Session) relValueToCell(v rel.Value) wam.Cell {
	switch v.Type {
	case rel.Int:
		return wam.MakeInt(v.I)
	case rel.Float:
		return s.m.PushFloat(v.F)
	default:
		return wam.MakeCon(s.m.Dict.Intern(v.S, 0))
	}
}
