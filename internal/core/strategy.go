package core

import (
	"fmt"

	"repro/internal/compiler"
	"repro/internal/dict"
	"repro/internal/edb"
	"repro/internal/rel"
	"repro/internal/setops"
	"repro/internal/term"
	"repro/internal/wam"
)

// Strategy selects how eligible externally stored rule predicates are
// evaluated — the two faces of the paper's §4 dual evaluation strategy.
type Strategy int

// Evaluation strategies.
const (
	// StrategyAuto (the default) uses set-at-a-time evaluation for
	// eligible predicates in a recursive component — where the WAM
	// re-fetches EDB pages per resolution step and semi-naive deltas pay
	// off — and the tuple-at-a-time WAM everywhere else.
	StrategyAuto Strategy = iota
	// StrategyTuple always runs the tuple-at-a-time WAM (the paper's
	// term-oriented strategy; also the pre-setops engine behaviour).
	StrategyTuple
	// StrategySet uses set-at-a-time evaluation for every eligible rule
	// predicate, recursive or not.
	StrategySet
)

func (st Strategy) String() string {
	switch st {
	case StrategyTuple:
		return "tuple"
	case StrategySet:
		return "set"
	default:
		return "auto"
	}
}

// ParseStrategy parses "auto", "tuple" or "set".
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "auto":
		return StrategyAuto, nil
	case "tuple":
		return StrategyTuple, nil
	case "set":
		return StrategySet, nil
	}
	return StrategyAuto, fmt.Errorf("core: unknown strategy %q (want auto, tuple or set)", s)
}

// Strategy reports the session's evaluation strategy.
func (s *Session) Strategy() Strategy { return s.opts.Strategy }

// SetStrategy switches the evaluation strategy between queries. Cached
// set-at-a-time results are dropped so the next query re-plans under the
// new strategy. (Thin wrapper over the WithStrategy option.)
func (s *Session) SetStrategy(st Strategy) {
	if s.opts.Strategy == st {
		return
	}
	s.opts.Strategy = st
	s.dropSetops()
}

// setopsInfo records what a materialized set-at-a-time result depends
// on: the invalidation version of every stored procedure involved
// (target, recursive companions, EDB fact leaves) and the cardinality of
// every relational-catalog leaf. revalidateSetops compares these at
// query start and drops stale results.
type setopsInfo struct {
	builtAt uint64            // kb invalidation version at build time
	deps    map[string]uint64 // verKey -> procedure version
	relDeps map[string]int    // relation name -> tuple count
}

func setopsCacheKey(name string, arity int) string {
	return fmt.Sprintf("%s/%d|setops", name, arity)
}

// dropSetops removes every materialized set-at-a-time result, restoring
// trap stubs. Must run between queries (blocks are removed).
func (s *Session) dropSetops() {
	for key, le := range s.loadedCache {
		if le.setops != nil {
			s.dropSetopsEntry(key, le)
		}
	}
}

func (s *Session) dropSetopsEntry(key string, le *loadedEntry) {
	if le.proc != nil && le.proc.Block != nil {
		s.m.RemoveBlock(le.proc.Block)
	}
	delete(s.loadedCache, key)
	fn := s.m.Dict.Intern(le.name, le.arity)
	if p := s.m.Proc(fn); p == le.proc {
		s.m.DefineProc(&wam.Proc{Fn: fn, Arity: le.arity, External: true})
	}
}

// revalidateSetops runs at query start: it applies a pending strategy
// change (made mid-query via educe_strategy/1, when blocks could not be
// removed) and drops any materialized result whose dependencies — not
// just its own predicate, which syncWithKB already covers — have
// changed. A dropped result re-traps and is rebuilt from the EDB on next
// use.
func (s *Session) revalidateSetops() {
	if s.strategyDirty {
		s.strategyDirty = false
		s.dropSetops()
		return
	}
	kbVer := s.kb.version.Load()
	for key, le := range s.loadedCache {
		info := le.setops
		if info == nil {
			continue
		}
		stale := false
		if info.builtAt != kbVer {
			for vk, ver := range info.deps {
				if s.kb.procVersionByKey(vk) != ver {
					stale = true
					break
				}
			}
			if !stale {
				info.builtAt = kbVer
			}
		}
		if !stale && len(info.relDeps) > 0 {
			// Relation inserts do not bump the KB invalidation version,
			// so catalog leaves are checked by cardinality every query.
			unlock := s.rlock()
			for rn, cnt := range info.relDeps {
				r := s.kb.cat.Get(rn)
				if r == nil || r.Count() != cnt {
					stale = true
					break
				}
			}
			unlock()
		}
		if stale {
			s.dropSetopsEntry(key, le)
		}
	}
}

// trySetops attempts set-at-a-time evaluation for an external rule
// predicate reached by the interpreter trap: it decompiles the
// predicate's stored clauses (and, transitively, every rule predicate
// they call) into Datalog, materializes the EDB and catalog leaves,
// runs the semi-naive fixpoint, and installs the result as a frozen
// binding-stream procedure. A nil, nil return means ineligible — the
// caller falls back to tuple-at-a-time loading.
func (s *Session) trySetops(fn dict.ID, name string, arity int) (*wam.Proc, error) {
	key := setopsCacheKey(name, arity)
	if le, ok := s.loadedCache[key]; ok {
		return le.proc, nil
	}
	pages0 := s.q.PagesTouched
	target := term.Indicator{Name: name, Arity: arity}

	prog, info, leaves, err := s.buildSetopsRules(target)
	if err != nil {
		return nil, err
	}
	if prog == nil {
		s.kb.setopsFallbacks.Inc()
		return nil, nil
	}
	if s.opts.Strategy == StrategyAuto && prog.RecursiveComponent(target) == nil {
		// Auto reserves the set-at-a-time pipeline for recursion, where
		// the WAM's per-resolution-step page traffic compounds.
		s.kb.setopsFallbacks.Inc()
		return nil, nil
	}
	ok, err := s.materializeLeaves(prog, info, leaves)
	if err != nil {
		return nil, err
	}
	if !ok {
		s.kb.setopsFallbacks.Inc()
		return nil, nil
	}

	var st setops.Stats
	check := func() error {
		if err := s.m.CheckCancel(); err != nil {
			return err
		}
		return s.quotaHook()
	}
	totals, err := prog.Eval(&st, check)
	if err != nil {
		return nil, err
	}
	s.kb.setopsQueries.Inc()
	s.kb.setopsIterations.Add(uint64(st.Iterations))
	s.kb.setopsDeltaTuples.Add(uint64(st.DeltaTuples))
	s.kb.setopsPages.Add(s.q.PagesTouched - pages0)

	// Feed the materialized result back into the WAM as a deterministic
	// collect-all binding stream (the mixed-strategy boundary of §4):
	// a nondeterministic builtin enumerating the tuples in derivation
	// order, installed and frozen like any loaded definition.
	tuples := totals[target].Tuples()
	cursor := func(m *wam.Machine, args []wam.Cell) (bool, error) {
		pos := 0
		redo := func(m *wam.Machine) (bool, error) {
			for pos < len(tuples) {
				t := tuples[pos]
				pos++
				ok := m.TryUnify(func() bool {
					for i := 0; i < arity; i++ {
						if !m.Unify(m.Reg(i), s.relValueToCell(t[i])) {
							return false
						}
					}
					return true
				})
				if ok {
					return true, nil
				}
			}
			return false, nil
		}
		m.PushRedo(redo)
		return redo(m)
	}
	idx := s.m.RegisterBuiltin(wam.Builtin{
		Name:  fmt.Sprintf("$setops_%s_%d", name, arity),
		Arity: arity,
		Fn:    cursor,
	})
	blk := s.m.AddBlock(&wam.CodeBlock{
		Name: fmt.Sprintf("$setops %s/%d", name, arity),
		Instrs: []wam.Instr{
			{Op: wam.OpBuiltin, N: int32(idx), Ar: int32(arity)},
			{Op: wam.OpProceed},
		},
	})
	proc := &wam.Proc{Fn: fn, Arity: arity, Block: blk, External: true, Transient: true}
	s.m.DefineProc(proc) // freeze: later calls skip the trap entirely
	s.loadedCache[key] = &loadedEntry{
		proc:   proc,
		name:   name,
		arity:  arity,
		ver:    info.deps[verKey(name, arity)],
		setops: info,
	}
	return proc, nil
}

// buildSetopsRules walks the dependency closure of the target predicate,
// decompiling every reachable stored rule predicate into Datalog rules.
// Leaf predicates (EDB facts-only procedures and relational-catalog
// relations) are collected for materialization but not yet read. A nil
// program (with nil error) means some reachable predicate is outside the
// safe fragment.
func (s *Session) buildSetopsRules(target term.Indicator) (*setops.Program, *setopsInfo, []term.Indicator, error) {
	prog := setops.NewProgram()
	info := &setopsInfo{
		builtAt: s.kb.version.Load(),
		deps:    map[string]uint64{},
		relDeps: map[string]int{},
	}
	var leaves []term.Indicator
	visited := map[term.Indicator]bool{}
	queue := []term.Indicator{target}
	for len(queue) > 0 {
		pi := queue[0]
		queue = queue[1:]
		if visited[pi] {
			continue
		}
		visited[pi] = true

		unlock := s.rlock()
		p := s.kb.db.Proc(pi.Name, pi.Arity)
		if p == nil {
			r := s.kb.cat.Get(pi.Name)
			unlock()
			if r == nil || len(r.Schema.Attrs) != pi.Arity {
				return nil, nil, nil, nil // unresolved: outside the EDB/rel reach
			}
			leaves = append(leaves, pi)
			continue
		}
		if p.Form != edb.FormCode {
			unlock()
			return nil, nil, nil, nil // source form: baseline territory
		}
		info.deps[verKey(pi.Name, pi.Arity)] = s.kb.procVersion(pi.Name, pi.Arity)
		if p.FactsOnly {
			unlock()
			leaves = append(leaves, pi)
			continue
		}
		clauses, err := s.fetchAllClauses(p)
		unlock()
		if err != nil {
			return nil, nil, nil, err
		}
		rules := make([]setops.Rule, 0, len(clauses))
		for _, cc := range clauses {
			r, ok := setops.DecompileClause(cc)
			if !ok {
				return nil, nil, nil, nil // cut/builtin/structure: not Datalog
			}
			rules = append(rules, r)
		}
		prog.AddRules(pi, rules)
		for _, r := range rules {
			for _, lit := range r.Body {
				queue = append(queue, lit.Pred)
			}
		}
	}
	return prog, info, leaves, nil
}

// fetchAllClauses retrieves a stored procedure's full clause set (the
// all-wild variant) through the shared decoded-code cache. Caller holds
// the KB read lock.
func (s *Session) fetchAllClauses(p *edb.ProcInfo) ([]compiler.ClauseCode, error) {
	keys := make([]edb.ArgKey, p.K)
	for i := range keys {
		keys[i] = edb.WildKey()
	}
	cacheKey := cacheKeyFor(p.Name, p.Arity, keys)
	if clauses, ok := s.kb.lookupShared(cacheKey); ok {
		s.q.CacheHits++
		return clauses, nil
	}
	s.q.CacheMisses++
	scs, err := s.kb.db.RetrieveObs(p, keys, &s.q)
	if err != nil {
		return nil, err
	}
	clauses, err := decodeClauses(scs)
	if err != nil {
		return nil, fmt.Errorf("core: %s/%d: %w", p.Name, p.Arity, err)
	}
	s.kb.storeShared(cacheKey, clauses)
	return clauses, nil
}

// materializeLeaves reads every leaf relation into memory: EDB
// facts-only procedures are fetched whole (one all-wild retrieval — the
// set-at-a-time page-traffic win) and decompiled to ground tuples;
// relational-catalog relations are scanned sequentially. false (with
// nil error) means a leaf holds non-atomic facts and the build falls
// back.
func (s *Session) materializeLeaves(prog *setops.Program, info *setopsInfo, leaves []term.Indicator) (bool, error) {
	for _, pi := range leaves {
		unlock := s.rlock()
		p := s.kb.db.Proc(pi.Name, pi.Arity)
		if p != nil {
			clauses, err := s.fetchAllClauses(p)
			unlock()
			if err != nil {
				return false, err
			}
			leaf := rel.NewMemRel(pi.Arity)
			for _, cc := range clauses {
				r, ok := setops.DecompileClause(cc)
				if !ok || len(r.Body) != 0 || r.NVars != 0 {
					return false, nil // compound-valued or non-ground fact
				}
				t := make(rel.Tuple, pi.Arity)
				for i, a := range r.Head.Args {
					t[i] = a.Val
				}
				leaf.Insert(t)
			}
			prog.AddLeaf(pi, leaf)
			continue
		}
		r := s.kb.cat.Get(pi.Name)
		if r == nil || len(r.Schema.Attrs) != pi.Arity {
			unlock()
			return false, nil
		}
		leaf := rel.NewMemRel(pi.Arity)
		it := rel.SeqScan(r)
		for {
			t, err := it.Next()
			if err != nil {
				it.Close()
				unlock()
				return false, err
			}
			if t == nil {
				break
			}
			leaf.Insert(t)
		}
		it.Close()
		info.relDeps[r.Schema.Name] = r.Count()
		unlock()
		prog.AddLeaf(pi, leaf)
	}
	return true, nil
}

// biStrategy implements educe_strategy/1: with an atom argument (auto,
// tuple, set) it switches the session's evaluation strategy — applied
// from the next query on, since materialized results cannot be unloaded
// mid-execution; with an unbound argument it reports the current one.
func (s *Session) biStrategy(m *wam.Machine, args []wam.Cell) (bool, error) {
	c := m.Deref(m.Reg(0))
	if c.Tag() == wam.TagCon {
		st, err := ParseStrategy(m.Dict.Name(c.AtomID()))
		if err != nil {
			return false, &wam.ErrBall{Term: term.Comp("error",
				term.Comp("domain_error", term.Atom("strategy"), term.Atom(m.Dict.Name(c.AtomID()))),
				term.Atom("educe_strategy/1"))}
		}
		if st != s.opts.Strategy {
			s.opts.Strategy = st
			s.strategyDirty = true
		}
		return true, nil
	}
	return m.Unify(m.Reg(0), wam.MakeCon(m.Dict.Intern(s.opts.Strategy.String(), 0))), nil
}
