package core

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/parser"
	"repro/internal/rel"
	"repro/internal/term"
)

func mustParseCore(t *testing.T, src string) term.Term {
	t.Helper()
	tm, _, err := parser.ParseTerm(src)
	if err != nil {
		t.Fatal(err)
	}
	return tm
}

func newEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func values(t *testing.T, e *Engine, q, v string) []string {
	t.Helper()
	sols, err := e.QueryAll(q)
	if err != nil {
		t.Fatalf("query %s: %v", q, err)
	}
	var out []string
	for _, s := range sols {
		out = append(out, s[v].String())
	}
	return out
}

func TestConsultAndQuery(t *testing.T) {
	e := newEngine(t, Options{})
	err := e.Consult(`
		parent(tom, bob). parent(tom, liz).
		parent(bob, ann). parent(bob, pat).
		grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
	`)
	if err != nil {
		t.Fatal(err)
	}
	got := values(t, e, "grandparent(tom, W)", "W")
	if !reflect.DeepEqual(got, []string{"ann", "pat"}) {
		t.Fatalf("got %v", got)
	}
}

func TestExternalFactsPreUnified(t *testing.T) {
	e := newEngine(t, Options{})
	if err := e.ConsultExternal(`
		edge(a, b). edge(b, c). edge(c, d). edge(d, e).
	`); err != nil {
		t.Fatal(err)
	}
	got := values(t, e, "edge(b, X)", "X")
	if !reflect.DeepEqual(got, []string{"c"}) {
		t.Fatalf("edge(b,X) = %v", got)
	}
	// Pre-unification stats: a bound query retrieves one candidate, not
	// four.
	e.ResetStats()
	values(t, e, "edge(c, X)", "X")
	st := e.Stats()
	if st.EDB.CandidatesReturned != 1 {
		t.Fatalf("pre-unification returned %d candidates", st.EDB.CandidatesReturned)
	}
	// Unbound: all four edges; this freezes the whole definition in
	// main memory, after which bound queries dispatch via the in-memory
	// switch instructions without further EDB retrievals.
	if n, _ := e.QueryCount("edge(_, _)"); n != 4 {
		t.Fatalf("edge(_,_) count = %d", n)
	}
	e.ResetStats()
	got = values(t, e, "edge(a, X)", "X")
	if !reflect.DeepEqual(got, []string{"b"}) {
		t.Fatalf("edge(a,X) after freeze = %v", got)
	}
	if e.Stats().EDB.Retrievals != 0 {
		t.Fatalf("frozen definition still retrieved from the EDB")
	}
}

func TestExternalRules(t *testing.T) {
	e := newEngine(t, Options{})
	if err := e.ConsultExternal(`
		edge(a, b). edge(b, c). edge(c, d).
		path(X, Y) :- edge(X, Y).
		path(X, Z) :- edge(X, Y), path(Y, Z).
	`); err != nil {
		t.Fatal(err)
	}
	got := values(t, e, "path(a, X)", "X")
	if !reflect.DeepEqual(got, []string{"b", "c", "d"}) {
		t.Fatalf("path(a,X) = %v", got)
	}
}

func TestExternalRulesWithControl(t *testing.T) {
	e := newEngine(t, Options{})
	if err := e.ConsultExternal(`
		val(1). val(5). val(-3).
		cls(X, C) :- val(X), ( X > 0 -> C = pos ; C = nonpos ).
	`); err != nil {
		t.Fatal(err)
	}
	got := values(t, e, "cls(X, C), C == pos", "X")
	if !reflect.DeepEqual(got, []string{"1", "5"}) {
		t.Fatalf("cls = %v", got)
	}
}

func TestBaselineSourceMode(t *testing.T) {
	e := newEngine(t, Options{RuleStorage: RuleStorageSource})
	if err := e.ConsultExternal(`
		edge(a, b). edge(b, c). edge(c, d).
		path(X, Y) :- edge(X, Y).
		path(X, Z) :- edge(X, Y), path(Y, Z).
	`); err != nil {
		t.Fatal(err)
	}
	got := values(t, e, "path(a, X)", "X")
	if !reflect.DeepEqual(got, []string{"b", "c", "d"}) {
		t.Fatalf("baseline path(a,X) = %v", got)
	}
	// The baseline must have parsed and asserted rules per query.
	if e.Stats().Phases.Asserts == 0 {
		t.Fatal("baseline made no asserts")
	}
	// Second query reloads (assert + erase per use).
	before := e.Stats().Phases.Asserts
	values(t, e, "path(b, X)", "X")
	if e.Stats().Phases.Asserts <= before {
		t.Fatal("baseline did not re-assert on second query")
	}
}

func TestModesAgree(t *testing.T) {
	src := `
		conn(a, b, 5). conn(b, c, 3). conn(a, c, 9). conn(c, d, 2).
		route(X, Y, C) :- conn(X, Y, C).
		route(X, Z, C) :- conn(X, Y, C1), route(Y, Z, C2), C is C1 + C2.
	`
	star := newEngine(t, Options{})
	if err := star.ConsultExternal(src); err != nil {
		t.Fatal(err)
	}
	base := newEngine(t, Options{RuleStorage: RuleStorageSource})
	if err := base.ConsultExternal(src); err != nil {
		t.Fatal(err)
	}
	q := "route(a, d, C)"
	got1 := values(t, star, q, "C")
	got2 := values(t, base, q, "C")
	if !reflect.DeepEqual(got1, got2) {
		t.Fatalf("modes disagree: compiled=%v source=%v", got1, got2)
	}
	if len(got1) == 0 {
		t.Fatal("no routes found")
	}
}

func TestFindallSetofBootstrap(t *testing.T) {
	e := newEngine(t, Options{})
	e.Consult(`item(3). item(1). item(2). item(1).`)
	got := values(t, e, "findall(X, item(X), L)", "L")
	if !reflect.DeepEqual(got, []string{"[3,1,2,1]"}) {
		t.Fatalf("findall = %v", got)
	}
	got = values(t, e, "setof(X, item(X), L)", "L")
	if !reflect.DeepEqual(got, []string{"[1,2,3]"}) {
		t.Fatalf("setof = %v", got)
	}
	got = values(t, e, "aggregate_all(count, item(X), N)", "N")
	if !reflect.DeepEqual(got, []string{"4"}) {
		t.Fatalf("count = %v", got)
	}
}

func TestAssertRetractDynamic(t *testing.T) {
	e := newEngine(t, Options{})
	if _, err := e.QueryAll("assert(counter(0))"); err != nil {
		t.Fatal(err)
	}
	got := values(t, e, "counter(X)", "X")
	if !reflect.DeepEqual(got, []string{"0"}) {
		t.Fatalf("counter = %v", got)
	}
	if _, err := e.QueryAll("retract(counter(0)), assert(counter(1))"); err != nil {
		t.Fatal(err)
	}
	got = values(t, e, "counter(X)", "X")
	if !reflect.DeepEqual(got, []string{"1"}) {
		t.Fatalf("counter after update = %v", got)
	}
	// Rules can be asserted too.
	if _, err := e.QueryAll("assert((double(X, Y) :- Y is X * 2))"); err != nil {
		t.Fatal(err)
	}
	got = values(t, e, "double(21, Y)", "Y")
	if !reflect.DeepEqual(got, []string{"42"}) {
		t.Fatalf("asserted rule = %v", got)
	}
}

func TestClauseEnumeration(t *testing.T) {
	e := newEngine(t, Options{})
	e.QueryAll("assert(f(1)), assert(f(2))")
	got := values(t, e, "clause(f(X), true)", "X")
	if !reflect.DeepEqual(got, []string{"1", "2"}) {
		t.Fatalf("clause/2 = %v", got)
	}
}

func TestPersistentStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kb.edb")
	e1, err := New(Options{StorePath: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.ConsultExternal(`city(munich). city(hamburg). link(munich, hamburg).`); err != nil {
		t.Fatal(err)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := New(Options{StorePath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	got := values(t, e2, "city(X)", "X")
	if !reflect.DeepEqual(got, []string{"munich", "hamburg"}) {
		t.Fatalf("cities after reopen = %v", got)
	}
	if n, _ := e2.QueryCount("link(munich, hamburg)"); n != 1 {
		t.Fatal("link lost after reopen")
	}
}

func TestRelationBridge(t *testing.T) {
	e := newEngine(t, Options{})
	r, err := e.CreateRelation(rel.Schema{
		Name:  "emp",
		Attrs: []rel.Attr{{Name: "id", Type: rel.Int}, {Name: "name", Type: rel.String}, {Name: "dept", Type: rel.Int}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		r.Insert(rel.Tuple{rel.IntV(int64(i)), rel.StringV(name(i)), rel.IntV(int64(i % 3))})
	}
	if err := r.CreateIndex("id"); err != nil {
		t.Fatal(err)
	}
	if err := e.BindRelation("emp"); err != nil {
		t.Fatal(err)
	}
	got := values(t, e, "emp(7, N, _)", "N")
	if !reflect.DeepEqual(got, []string{"e7"}) {
		t.Fatalf("emp(7,N,_) = %v", got)
	}
	if n, _ := e.QueryCount("emp(_, _, 1)"); n != 7 {
		t.Fatalf("dept 1 count = %d", n)
	}
	// Mix with rules: term-oriented over the relation (dual strategy).
	// "e4" names employees 4 (dept 1) and 14 (dept 2).
	e.Consult("dept_of(Name, D) :- emp(_, Name, D).")
	got = values(t, e, "dept_of(e4, D)", "D")
	if !reflect.DeepEqual(got, []string{"1", "2"}) {
		t.Fatalf("dept_of = %v", got)
	}
}

func name(i int) string { return "e" + string(rune('0'+i%10)) }

func TestDisableIndexingStillCorrect(t *testing.T) {
	e := newEngine(t, Options{DisableIndexing: true})
	e.Consult(`color(red, warm). color(blue, cool). color(green, cool).`)
	got := values(t, e, "color(blue, T)", "T")
	if !reflect.DeepEqual(got, []string{"cool"}) {
		t.Fatalf("got %v", got)
	}
}

func TestDisablePreUnification(t *testing.T) {
	e := newEngine(t, Options{DisablePreUnification: true})
	if err := e.ConsultExternal(`f(1, one). f(2, two). f(3, three).`); err != nil {
		t.Fatal(err)
	}
	e.ResetStats()
	got := values(t, e, "f(2, X)", "X")
	if !reflect.DeepEqual(got, []string{"two"}) {
		t.Fatalf("got %v", got)
	}
	if e.Stats().EDB.CandidatesReturned != 3 {
		t.Fatalf("expected full retrieval, got %d candidates", e.Stats().EDB.CandidatesReturned)
	}
}

func TestOpDirective(t *testing.T) {
	e := newEngine(t, Options{})
	if err := e.Consult(`
		:- op(700, xfx, ===>).
		rule(a ===> b).
	`); err != nil {
		t.Fatal(err)
	}
	got := values(t, e, "rule(X ===> Y), Z = Y", "Z")
	if !reflect.DeepEqual(got, []string{"b"}) {
		t.Fatalf("custom op = %v", got)
	}
}

func TestGCDuringQuery(t *testing.T) {
	e := newEngine(t, Options{})
	e.Machine().SetGCThreshold(2048)
	e.Consult(`
		build(0, []) :- !.
		build(N, [N|T]) :- N1 is N - 1, build(N1, T).
		churn(0) :- !.
		churn(N) :- build(200, _), N1 is N - 1, churn(N1).
	`)
	if n, err := e.QueryCount("churn(300)"); err != nil || n != 1 {
		t.Fatalf("churn: %d %v", n, err)
	}
	if e.Stats().Machine.GCRuns == 0 {
		t.Fatal("GC never ran despite churn")
	}
}

func TestQuerySolutionsIterator(t *testing.T) {
	e := newEngine(t, Options{})
	e.Consult("n(1). n(2). n(3).")
	s, err := e.Query("n(X)")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Next() {
		t.Fatal("no first solution")
	}
	if s.Binding("X").String() != "1" {
		t.Fatalf("first = %v", s.Binding("X"))
	}
	s.Close()
	// After Close, a new query works.
	if n, _ := e.QueryCount("n(_)"); n != 3 {
		t.Fatal("engine unusable after Close")
	}
}

func TestBaselineIteratorEarlyClose(t *testing.T) {
	e := newEngine(t, Options{RuleStorage: RuleStorageSource})
	if err := e.ConsultExternal("m(1). m(2). m(3)."); err != nil {
		t.Fatal(err)
	}
	s, err := e.Query("m(X)")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Next() {
		t.Fatal("no solution")
	}
	s.Close() // must not deadlock or leak
	if n, _ := e.QueryCount("m(_)"); n != 3 {
		t.Fatal("engine broken after early close")
	}
}

func TestCatchThrow(t *testing.T) {
	e := newEngine(t, Options{})
	e.Consult(`
		risky(X) :- X > 0, throw(too_big(X)).
		risky(X) :- X =< 0.
		safe(X, R) :- catch((risky(X), R = ran), too_big(N), R = caught(N)).
	`)
	// Thrown and caught, with bindings flowing into the recovery.
	got := values(t, e, "safe(5, R)", "R")
	if !reflect.DeepEqual(got, []string{"caught(5)"}) {
		t.Fatalf("safe(5, R) = %v", got)
	}
	// No throw: catch is transparent and the goal's bindings survive.
	got = values(t, e, "safe(-1, R)", "R")
	if !reflect.DeepEqual(got, []string{"ran"}) {
		t.Fatalf("safe(-1, R) = %v", got)
	}
}

func TestCatchRethrow(t *testing.T) {
	e := newEngine(t, Options{})
	e.Consult(`
		inner :- catch(throw(other), nomatch, true).
		outer(R) :- catch(inner, other, R = outer_caught).
	`)
	got := values(t, e, "outer(R)", "R")
	if !reflect.DeepEqual(got, []string{"outer_caught"}) {
		t.Fatalf("outer(R) = %v", got)
	}
}

func TestUncaughtBallAborts(t *testing.T) {
	e := newEngine(t, Options{})
	e.Consult("boom :- throw(kaboom).")
	_, err := e.QueryAll("boom")
	if err == nil {
		t.Fatal("expected uncaught exception error")
	}
	if !containsSub(err.Error(), "kaboom") {
		t.Fatalf("error %q does not mention the ball", err)
	}
}

func TestExistenceErrorCatchable(t *testing.T) {
	e := newEngine(t, Options{})
	e.Consult(`
		try(R) :- catch(no_such_predicate(1), error(existence_error(procedure, PI), _), R = missing(PI)).
	`)
	got := values(t, e, "try(R)", "R")
	if len(got) != 1 || !containsSub(got[0], "no_such_predicate") {
		t.Fatalf("try(R) = %v", got)
	}
	// Without a catcher the existence error aborts the query.
	if _, err := e.QueryAll("no_such_predicate(1)"); err == nil {
		t.Fatal("expected existence error")
	}
}

func TestCatchBacktracksThroughGoal(t *testing.T) {
	e := newEngine(t, Options{})
	e.Consult(`p(1). p(2). p(3).`)
	got := values(t, e, "catch(p(X), _, fail)", "X")
	if !reflect.DeepEqual(got, []string{"1", "2", "3"}) {
		t.Fatalf("catch enumeration = %v", got)
	}
}

func TestThrowUnwindsNestedCalls(t *testing.T) {
	e := newEngine(t, Options{})
	e.Consult(`
		deep(0) :- throw(bottom).
		deep(N) :- N > 0, N1 is N - 1, deep(N1).
		run(R) :- catch(deep(50), bottom, R = unwound).
	`)
	got := values(t, e, "run(R)", "R")
	if !reflect.DeepEqual(got, []string{"unwound"}) {
		t.Fatalf("run(R) = %v", got)
	}
}

func containsSub(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestAssertRetractExternal(t *testing.T) {
	e := newEngine(t, Options{})
	if err := e.ConsultExternal("stock(apples, 10). stock(pears, 5)."); err != nil {
		t.Fatal(err)
	}
	// Assert a new external fact and query it.
	tm := mustParseCore(t, "stock(plums, 7)")
	if err := e.AssertExternalTerm(tm); err != nil {
		t.Fatal(err)
	}
	if n, _ := e.QueryCount("stock(plums, 7)"); n != 1 {
		t.Fatal("asserted external fact not found")
	}
	// Retract it again.
	ok, err := e.RetractExternal(mustParseCore(t, "stock(plums, 7)"))
	if err != nil || !ok {
		t.Fatalf("retract: %v %v", ok, err)
	}
	if n, _ := e.QueryCount("stock(plums, _)"); n != 0 {
		t.Fatal("retracted external fact still found")
	}
	// Retracting an absent clause fails cleanly.
	ok, err = e.RetractExternal(mustParseCore(t, "stock(mangoes, 1)"))
	if err != nil || ok {
		t.Fatalf("retract absent: %v %v", ok, err)
	}
	// The remaining facts are untouched.
	if n, _ := e.QueryCount("stock(_, _)"); n != 2 {
		t.Fatal("unrelated facts disturbed")
	}
}

func TestRetractExternalRule(t *testing.T) {
	e := newEngine(t, Options{})
	if err := e.ConsultExternal(`
		r(X) :- s(X).
		r(X) :- t(X).
		s(1). t(2).
	`); err != nil {
		t.Fatal(err)
	}
	if got := values(t, e, "r(X)", "X"); len(got) != 2 {
		t.Fatalf("r(X) = %v", got)
	}
	ok, err := e.RetractExternal(mustParseCore(t, "r(X) :- t(X)"))
	if err != nil || !ok {
		t.Fatalf("retract rule: %v %v", ok, err)
	}
	got := values(t, e, "r(X)", "X")
	if !reflect.DeepEqual(got, []string{"1"}) {
		t.Fatalf("after retract r(X) = %v", got)
	}
	// Clauses with control constructs are rejected in compiled form.
	if err := e.AssertExternalTerm(mustParseCore(t, "r(X) :- (s(X) ; t(X))")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RetractExternal(mustParseCore(t, "r(X) :- (s(X) ; t(X))")); err == nil {
		t.Fatal("expected control-construct rejection")
	}
}

func TestDropExternal(t *testing.T) {
	e := newEngine(t, Options{})
	if err := e.ConsultExternal("gone(1). gone(2)."); err != nil {
		t.Fatal(err)
	}
	if err := e.DropExternal("gone", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.QueryAll("gone(X)"); err == nil {
		t.Fatal("dropped procedure still callable")
	}
	if err := e.DropExternal("gone", 1); err == nil {
		t.Fatal("double drop should error")
	}
}

func TestRetractExternalSourceMode(t *testing.T) {
	e := newEngine(t, Options{RuleStorage: RuleStorageSource})
	if err := e.ConsultExternal("m(1). m(2). m(3)."); err != nil {
		t.Fatal(err)
	}
	ok, err := e.RetractExternal(mustParseCore(t, "m(2)"))
	if err != nil || !ok {
		t.Fatalf("retract: %v %v", ok, err)
	}
	got := values(t, e, "m(X)", "X")
	if !reflect.DeepEqual(got, []string{"1", "3"}) {
		t.Fatalf("after retract m(X) = %v", got)
	}
}

func TestAcyclicTerm(t *testing.T) {
	e := newEngine(t, Options{})
	if n, _ := e.QueryCount("acyclic_term(f(1, g(2), [a,b]))"); n != 1 {
		t.Fatal("acyclic term misreported")
	}
	// Building a cyclic term needs rational-tree unification: X = f(X).
	if n, _ := e.QueryCount("X = f(X), cyclic_term(X)"); n != 1 {
		t.Fatal("cyclic term not detected")
	}
	if n, _ := e.QueryCount("X = f(Y), acyclic_term(X)"); n != 1 {
		t.Fatal("open term misreported as cyclic")
	}
}

func TestLoadedCodeCacheEviction(t *testing.T) {
	// Thousands of distinct pre-unification keys push the session code
	// cache past its limit; the epoch eviction must not break answers.
	e := newEngine(t, Options{})
	var src string
	for i := 0; i < 1500; i++ {
		src += fmt.Sprintf("kv(k%d, %d).\n", i, i)
	}
	if err := e.ConsultExternal(src); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1500; i += 7 {
		got := values(t, e, fmt.Sprintf("kv(k%d, V)", i), "V")
		if len(got) != 1 || got[0] != fmt.Sprintf("%d", i) {
			t.Fatalf("kv(k%d) = %v", i, got)
		}
	}
	// Re-query early keys after eviction cycles.
	got := values(t, e, "kv(k0, V)", "V")
	if !reflect.DeepEqual(got, []string{"0"}) {
		t.Fatalf("kv(k0) after eviction = %v", got)
	}
}

func TestSolutionsIteratorEdgeCases(t *testing.T) {
	e := newEngine(t, Options{})
	e.Consult("one(1).")
	s, err := e.Query("one(X)")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Next() {
		t.Fatal("missing solution")
	}
	if s.Next() {
		t.Fatal("spurious second solution")
	}
	// Next after exhaustion stays false, Err stays nil.
	if s.Next() || s.Err() != nil {
		t.Fatal("iterator not stable after exhaustion")
	}
	s.Close()
	s.Close() // double close is harmless

	// Error propagation through the iterator.
	s, err = e.Query("one(X), throw(oops)")
	if err != nil {
		t.Fatal(err)
	}
	if s.Next() {
		t.Fatal("solution despite throw")
	}
	if s.Err() == nil {
		t.Fatal("missing error")
	}
	s.Close()
}

func TestEngineManyQueriesStable(t *testing.T) {
	e := newEngine(t, Options{})
	e.Consult(`
		len([], 0).
		len([_|T], N) :- len(T, N1), N is N1 + 1.
	`)
	for i := 0; i < 500; i++ {
		got := values(t, e, "len([a,b,c], N)", "N")
		if len(got) != 1 || got[0] != "3" {
			t.Fatalf("iteration %d: %v", i, got)
		}
	}
	// Code blocks must not accumulate per query beyond the query procs.
	if nblocks := len(values(t, e, "len([], N)", "N")); nblocks != 1 {
		t.Fatal("engine degraded")
	}
}

func TestTypedSubLanguage(t *testing.T) {
	e := newEngine(t, Options{})
	err := e.ConsultExternal(`
		:- typed(conn(atom, atom, integer)).
		conn(a, b, 5).
		conn(b, c, 3).
	`)
	if err != nil {
		t.Fatal(err)
	}
	// A violating clause is rejected at store time.
	err = e.ConsultExternal("conn(a, b, not_an_integer).")
	if err == nil {
		t.Fatal("type violation accepted")
	}
	if !containsSub(err.Error(), "declared type integer") {
		t.Fatalf("error %q does not explain the violation", err)
	}
	// Variables pass any type.
	if err := e.ConsultExternal("conn(x, y, _)."); err != nil {
		t.Fatalf("variable argument rejected: %v", err)
	}
	// Untyped predicates are unaffected.
	if err := e.ConsultExternal("free(whatever, 1.5)."); err != nil {
		t.Fatal(err)
	}
	// Queries still work.
	got := values(t, e, "conn(a, b, T)", "T")
	if !reflect.DeepEqual(got, []string{"5"}) {
		t.Fatalf("conn = %v", got)
	}
}

func TestStatisticsBuiltin(t *testing.T) {
	e := newEngine(t, Options{})
	e.Consult("p(1).")
	values(t, e, "p(X)", "X") // generate some activity
	got := values(t, e, "educe_statistics(instructions, N)", "N")
	if len(got) != 1 || got[0] == "0" {
		t.Fatalf("instructions stat = %v", got)
	}
	// Enumeration mode yields all keys: 33 counters (including the
	// buffer-pool hit/eviction/latch and shard-count stats and the
	// transaction/read-only robustness stats) plus the seven query
	// phases and store_ns.
	n, err := e.QueryCount("educe_statistics(_, _)")
	if err != nil || n != 41 {
		t.Fatalf("stat keys = %d (%v)", n, err)
	}
	// The phase breakdown is exposed: the p(X) query above must have
	// spent time executing.
	got = values(t, e, "educe_statistics(exec_ns, N)", "N")
	if len(got) != 1 || got[0] == "0" {
		t.Fatalf("exec_ns stat = %v", got)
	}
	// Unknown key fails.
	if n, _ := e.QueryCount("educe_statistics(bogus, _)"); n != 0 {
		t.Fatal("bogus key should fail")
	}
}
