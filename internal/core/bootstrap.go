package core

// bootstrapSrc is the Prolog-level standard library compiled into every
// engine at start-up. Control constructs appear here as ordinary
// predicates so they remain callable through call/N (compiled clause
// bodies get the faster auxiliary-predicate translation instead).
const bootstrapSrc = `
% --- control, callable via metacall -------------------------------------
','(A, B) :- call(A), call(B).
';'(ITE, Else) :- nonvar(ITE), ITE = (C -> T), !, '$ite'(C, T, Else).
';'(A, _) :- call(A).
';'(_, B) :- call(B).
'$ite'(C, T, _) :- call(C), !, call(T).
'$ite'(_, _, E) :- call(E).
'->'(C, T) :- '$ite'(C, T, fail).
'\\+'(G) :- call(G), !, fail.
'\\+'(_).
not(G) :- \+ G.
once(G) :- call(G), !.
ignore(G) :- call(G), !.
ignore(_).
forall(C, A) :- \+ (C, \+ A).

% --- transactions ----------------------------------------------------------
% transaction(G) runs G once inside a KB transaction: commit on success,
% rollback on failure or on any error (the error is rethrown). commit
% itself may throw error(transaction_error(commit_failed), educe); the
% handler's rollback is then a no-op (the engine already rolled back).
transaction(G) :-
	begin,
	catch((call(G) -> commit ; ('$txn_abort', fail)),
	      B,
	      ('$txn_abort', throw(B))).
'$txn_abort' :- catch(rollback, _, true).

% --- all-solutions --------------------------------------------------------
findall(T, G, L) :-
	'$findall_start'(R),
	'$findall_loop'(R, T, G),
	'$findall_collect'(R, L).
'$findall_loop'(R, T, G) :- call(G), '$findall_add'(R, T), fail.
'$findall_loop'(_, _, _).
bagof(T, G, L) :- '$ex_strip'(G, G1), findall(T, G1, L), L \= [].
setof(T, G, S) :- '$ex_strip'(G, G1), findall(T, G1, L), sort(L, S), S \= [].
'$ex_strip'(G, G) :- var(G), !.
'$ex_strip'(_ ^ G, G1) :- !, '$ex_strip'(G, G1).
'$ex_strip'(G, G).
aggregate_all(count, G, N) :- findall(x, G, L), length(L, N).

% --- lists ------------------------------------------------------------------
append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).
memberchk(X, L) :- member(X, L), !.
reverse(L, R) :- '$rev'(L, [], R).
'$rev'([], A, A).
'$rev'([H|T], A, R) :- '$rev'(T, [H|A], R).
last([X], X) :- !.
last([_|T], X) :- last(T, X).
nth0(N, L, X) :- '$nth'(L, 0, N, X).
nth1(N, L, X) :- '$nth'(L, 1, N, X).
'$nth'([X|_], I, I, X).
'$nth'([_|T], I0, I, X) :- I1 is I0 + 1, '$nth'(T, I1, I, X).
sum_list([], 0).
sum_list([H|T], S) :- sum_list(T, S1), S is S1 + H.
max_list([X], X) :- !.
max_list([H|T], M) :- max_list(T, M1), M is max(H, M1).
min_list([X], X) :- !.
min_list([H|T], M) :- min_list(T, M1), M is min(H, M1).
numlist(L, H, []) :- L > H, !.
numlist(L, H, [L|T]) :- L1 is L + 1, numlist(L1, H, T).
select(X, [X|T], T).
select(X, [H|T], [H|R]) :- select(X, T, R).
delete([], _, []).
delete([X|T], X, R) :- !, delete(T, X, R).
delete([H|T], X, [H|R]) :- delete(T, X, R).
exclude(_, [], []).
exclude(P, [H|T], R) :- call(P, H), !, exclude(P, T, R).
exclude(P, [H|T], [H|R]) :- exclude(P, T, R).
include(_, [], []).
include(P, [H|T], [H|R]) :- call(P, H), !, include(P, T, R).
include(P, [H|T], R) :- include(P, T, R).
maplist(_, []).
maplist(P, [H|T]) :- call(P, H), maplist(P, T).
maplist(_, [], []).
maplist(P, [H|T], [H2|T2]) :- call(P, H, H2), maplist(P, T, T2).
`

// loadBootstrap links the library into this session's machine. The
// library is compiled once per knowledge base (it contains no
// directives, so the relocatable units are session-independent);
// sessions share the units and pay only the link step.
func (s *Session) loadBootstrap() error {
	units, order, err := s.kb.bootstrapUnits(s)
	if err != nil {
		return err
	}
	for _, pi := range order {
		if err := s.link(pi, units[pi], false); err != nil {
			return err
		}
	}
	// Bootstrap loading should not pollute the phase statistics that
	// benchmarks read.
	s.q.Reset()
	s.cum.Reset()
	return nil
}
