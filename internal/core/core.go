package core
