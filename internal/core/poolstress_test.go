package core_test

// Reader/writer hammer test for the sharded buffer pool (run with
// -race): 8 reader sessions stream queries over a file-backed KB whose
// pool is deliberately tiny, so every scan forces evictions and dirty
// write-backs to race against concurrent pins; meanwhile one writer
// churns a stored procedure with asserts and retracts. The churned
// clauses embed an atom far larger than the heap's inline threshold, so
// every retract frees an overflow-page chain and every assert
// reallocates those pages — racing the readers' clause scans exactly
// where a scanner that resolved overflow chains outside its page-pin
// window would read freed or recycled pages. Afterwards the structural
// checkers re-verify every page (checksums are validated by the pager on
// each read) and the store is reopened from disk to prove the
// WAL/checkpoint state recovers to the exact logical contents.

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/term"
)

func parseTerm(src string) (term.Term, error) {
	tm, _, err := parser.ParseTerm(src)
	return tm, err
}

func TestPoolStressReadersWithChurningWriter(t *testing.T) {
	if testing.Short() {
		t.Skip("pool stress test is slow")
	}
	const (
		nReaders   = 8
		nHot       = 200 // stable facts, count checked exactly on every read
		nBlob      = 24  // stable overflow-sized facts, count checked too
		nChurn     = 60  // writer assert iterations (every other one retracted)
		readRounds = 25
	)
	// An atom well past the heap's 2 KiB inline threshold: clauses built
	// from it are stored as multi-page overflow chains, so churning them
	// frees and reallocates overflow pages under the readers.
	bigAtom := strings.Repeat("b", 4000)
	path := filepath.Join(t.TempDir(), "stress.educe")
	// 16 pool pages against a KB of hundreds of pages: nearly every scan
	// evicts, so dirty write-backs and faults race with concurrent pins.
	kb, err := core.OpenKB(core.Options{StorePath: path, PoolPages: 16})
	if err != nil {
		t.Fatal(err)
	}

	setup, err := kb.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	pad := "padding_payload_atom_to_spread_the_clauses_over_many_pages"
	var src string
	for i := 0; i < nHot; i++ {
		src += fmt.Sprintf("hot(%d, %s_%d).\n", i, pad, i%7)
	}
	for i := 0; i < nBlob; i++ {
		src += fmt.Sprintf("blob(%d, %s_%d).\n", i, bigAtom, i)
	}
	src += "churn(seed, 0).\n"
	if err := setup.ConsultExternal(src); err != nil {
		t.Fatal(err)
	}
	setup.Close()

	var wg sync.WaitGroup
	errs := make(chan error, nReaders+1)

	wg.Add(1)
	go func() {
		defer wg.Done()
		w, err := kb.NewSession()
		if err != nil {
			errs <- err
			return
		}
		defer w.Close()
		for i := 0; i < nChurn; i++ {
			// Overflow-sized clause: the second argument's atom forces a
			// multi-page chain, so the retract below frees real overflow
			// pages while readers scan.
			tm, err := parseTerm(fmt.Sprintf("churn(c%d, %s_%d).", i, bigAtom, i))
			if err != nil {
				errs <- err
				return
			}
			if err := w.AssertExternalTerm(tm); err != nil {
				errs <- fmt.Errorf("assert %d: %v", i, err)
				return
			}
			if i%2 == 1 {
				prev, err := parseTerm(fmt.Sprintf("churn(c%d, %s_%d)", i-1, bigAtom, i-1))
				if err != nil {
					errs <- err
					return
				}
				ok, err := w.RetractExternal(prev)
				if err != nil {
					errs <- fmt.Errorf("retract %d: %v", i-1, err)
					return
				}
				if !ok {
					errs <- fmt.Errorf("retract %d: clause not found", i-1)
					return
				}
			}
		}
	}()

	for r := 0; r < nReaders; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			s, err := kb.NewSession()
			if err != nil {
				errs <- err
				return
			}
			defer s.Close()
			for i := 0; i < readRounds; i++ {
				n, err := s.QueryCount("hot(X, Y)")
				if err != nil {
					errs <- fmt.Errorf("reader %d round %d hot: %v", r, i, err)
					return
				}
				if n != nHot {
					errs <- fmt.Errorf("reader %d round %d: hot count %d, want %d", r, i, n, nHot)
					return
				}
				b, err := s.QueryCount("blob(X, Y)")
				if err != nil {
					errs <- fmt.Errorf("reader %d round %d blob: %v", r, i, err)
					return
				}
				if b != nBlob {
					errs <- fmt.Errorf("reader %d round %d: blob count %d, want %d", r, i, b, nBlob)
					return
				}
				// churn/2 varies under the writer; any snapshot the KB
				// lock admits is fine, errors and torn counts are not.
				c, err := s.QueryCount("churn(X, Y)")
				if err != nil {
					errs <- fmt.Errorf("reader %d round %d churn: %v", r, i, err)
					return
				}
				if c < 1 || c > nChurn+1 {
					errs <- fmt.Errorf("reader %d round %d: churn count %d out of range [1,%d]", r, i, c, nChurn+1)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The tiny pool must actually have forced evictions — otherwise this
	// test exercised nothing.
	if st := kb.Store().Stats(); st.Evictions == 0 {
		t.Errorf("no evictions recorded (pool too large for the workload?)")
	}

	// Structural + checksum sweep: Check reads every page of every
	// structure through the pool; the file pager verifies each page's
	// checksum on the way in.
	if err := kb.Check(); err != nil {
		t.Errorf("post-stress check: %v", err)
	}
	if err := kb.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen from disk: WAL/checkpoint recovery must restore the exact
	// logical state the sessions produced.
	kb2, err := core.OpenKB(core.Options{StorePath: path, PoolPages: 16})
	if err != nil {
		t.Fatalf("reopen after stress: %v", err)
	}
	defer kb2.Close()
	if err := kb2.Check(); err != nil {
		t.Errorf("post-reopen check: %v", err)
	}
	s2, err := kb2.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	n, err := s2.QueryCount("hot(X, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if n != nHot {
		t.Errorf("hot count after reopen: %d, want %d", n, nHot)
	}
	b, err := s2.QueryCount("blob(X, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if b != nBlob {
		t.Errorf("blob count after reopen: %d, want %d", b, nBlob)
	}
	c, err := s2.QueryCount("churn(X, Y)")
	if err != nil {
		t.Fatal(err)
	}
	// seed + surviving churn facts: every odd i removed its predecessor,
	// so exactly half of nChurn survive.
	want := 1 + nChurn/2
	if c != want {
		t.Errorf("churn count after reopen: %d, want %d", c, want)
	}
}
