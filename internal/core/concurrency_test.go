package core_test

// Concurrency tests for the KnowledgeBase/Session split: N sessions over
// one shared knowledge base must answer queries concurrently (run these
// with -race), and a writer updating a stored procedure must invalidate
// every session's loaded copy.

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/bench/mvv"
	"repro/internal/core"
)

// mvvStressQueries picks a mixed workload of MVV Class 1 and Class 2
// queries (direct connections and one-change routes).
func mvvStressQueries(data *mvv.Data) []string {
	var qs []string
	qs = append(qs, data.Class1[:5]...)
	qs = append(qs, data.Class2[:5]...)
	return qs
}

// TestConcurrentSessionsMVV runs 8 concurrent sessions over one shared
// knowledge base, each answering the mixed MVV workload, and checks every
// session's solution counts against a single-session engine loaded with
// the same data (the differential baseline).
func TestConcurrentSessionsMVV(t *testing.T) {
	if testing.Short() {
		t.Skip("MVV stress test is slow")
	}
	data := mvv.Generate()
	queries := mvvStressQueries(data)

	// Differential baseline: a private single-session engine.
	base, err := bench.SetupMVV(bench.EduceStar, data)
	if err != nil {
		t.Fatalf("baseline setup: %v", err)
	}
	defer base.Close()
	want := make([]int, len(queries))
	for i, q := range queries {
		n, err := base.QueryCount(q)
		if err != nil {
			t.Fatalf("baseline query %q: %v", q, err)
		}
		want[i] = n
	}

	kb, err := bench.SetupMVVKB(data)
	if err != nil {
		t.Fatalf("shared KB setup: %v", err)
	}
	defer kb.Close()

	const nSessions = 8
	var wg sync.WaitGroup
	errs := make(chan error, nSessions)
	for w := 0; w < nSessions; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := bench.NewMVVSession(kb)
			if err != nil {
				errs <- fmt.Errorf("session %d: %v", w, err)
				return
			}
			defer s.Close()
			// Two passes: the first loads code from the EDB (and fills
			// the shared cache), the second hits resident/frozen code.
			for pass := 0; pass < 2; pass++ {
				for i, q := range queries {
					n, err := s.QueryCount(q)
					if err != nil {
						errs <- fmt.Errorf("session %d pass %d query %q: %v", w, pass, q, err)
						return
					}
					if n != want[i] {
						errs <- fmt.Errorf("session %d pass %d query %q: got %d solutions, want %d",
							w, pass, q, n, want[i])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestWriterInvalidatesReaders checks cross-session cache invalidation:
// readers freeze a stored procedure's definition in their machines, a
// different session updates the stored procedure with ConsultExternal,
// and the readers' next queries must see the new clauses.
func TestWriterInvalidatesReaders(t *testing.T) {
	kb, err := core.OpenKB(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer kb.Close()

	writer, err := kb.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()
	if err := writer.ConsultExternal("route(a, b). route(b, c)."); err != nil {
		t.Fatal(err)
	}

	const nReaders = 4
	readers := make([]*core.Session, nReaders)
	for i := range readers {
		s, err := kb.NewSession()
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		readers[i] = s
	}
	// Load (and freeze) the definition in every reader.
	for i, r := range readers {
		n, err := r.QueryCount("route(X, Y)")
		if err != nil {
			t.Fatalf("reader %d: %v", i, err)
		}
		if n != 2 {
			t.Fatalf("reader %d: got %d routes before update, want 2", i, n)
		}
	}

	// The writer appends a clause to the stored procedure.
	if err := writer.ConsultExternal("route(c, d)."); err != nil {
		t.Fatal(err)
	}

	// Every reader must observe the update on its next query, even though
	// its machine had installed the old definition.
	for i, r := range readers {
		n, err := r.QueryCount("route(X, Y)")
		if err != nil {
			t.Fatalf("reader %d: %v", i, err)
		}
		if n != 3 {
			t.Errorf("reader %d: got %d routes after update, want 3 (stale cache?)", i, n)
		}
	}

	// The writer's own session must see its write too.
	n, err := writer.QueryCount("route(X, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("writer: got %d routes after update, want 3", n)
	}
}

// TestConcurrentReadersWithWriter races reading sessions against a
// writing session appending facts to a stored procedure (run with -race).
// Each reader must always observe one of the states the writer produced
// (monotonically growing counts), never an error or a torn result.
func TestConcurrentReadersWithWriter(t *testing.T) {
	kb, err := core.OpenKB(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer kb.Close()

	setup, err := kb.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := setup.ConsultExternal("tick(0)."); err != nil {
		t.Fatal(err)
	}
	setup.Close()

	const nReaders = 8
	const nWrites = 20
	var wg sync.WaitGroup
	errs := make(chan error, nReaders+1)

	wg.Add(1)
	go func() {
		defer wg.Done()
		w, err := kb.NewSession()
		if err != nil {
			errs <- err
			return
		}
		defer w.Close()
		for i := 1; i <= nWrites; i++ {
			if err := w.ConsultExternal(fmt.Sprintf("tick(%d).", i)); err != nil {
				errs <- fmt.Errorf("write %d: %v", i, err)
				return
			}
		}
	}()

	for r := 0; r < nReaders; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			s, err := kb.NewSession()
			if err != nil {
				errs <- err
				return
			}
			defer s.Close()
			last := 0
			for i := 0; i < 50; i++ {
				n, err := s.QueryCount("tick(X)")
				if err != nil {
					errs <- fmt.Errorf("reader %d: %v", r, err)
					return
				}
				if n < last || n > nWrites+1 {
					errs <- fmt.Errorf("reader %d: count went from %d to %d (writer max %d)",
						r, last, n, nWrites+1)
					return
				}
				last = n
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Quiesced: everyone sees the final state.
	final, err := kb.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer final.Close()
	n, err := final.QueryCount("tick(X)")
	if err != nil {
		t.Fatal(err)
	}
	if n != nWrites+1 {
		t.Errorf("final count %d, want %d", n, nWrites+1)
	}
}
