package core

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/compiler"
	"repro/internal/dict"
	"repro/internal/edb"
	"repro/internal/interp"
	"repro/internal/loader"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/term"
	"repro/internal/wam"
)

func floatBits(f float64) uint64 { return math.Float64bits(f) }

// onUndefined is the interpreter trap of §3.2.1: a call to a procedure
// with no resident code consults the procedures table and, for an external
// procedure, invokes the dynamic loader. The loader pre-unifies in the EDB
// using the call's bound arguments, decodes the candidate relocatable
// clauses, resolves their associative addresses and splices control code.
//
// The decoded (still relocatable) candidate sets are shared across
// sessions through the knowledge base's code cache; only the final link
// against this session's machine is per-session. The KB read lock is held
// across the storage access, never across linking or execution.
func (s *Session) onUndefined(m *wam.Machine, fn dict.ID) (*wam.Proc, error) {
	name := m.Dict.Name(fn)
	arity := m.Dict.Arity(fn)

	unlock := s.rlock()
	p := s.kb.db.Proc(name, arity)
	if p == nil {
		unlock()
		return nil, nil // genuinely unknown
	}

	// Set-at-a-time attempt (§4's second evaluation strategy): an
	// external rule predicate whose dependency closure is safe Datalog
	// over EDB/catalog leaves is evaluated bottom-up with semi-naive
	// deltas and frozen as a materialized binding stream. Ineligible
	// predicates (and StrategyTuple sessions) continue below on the
	// tuple-at-a-time loader path.
	if s.opts.Strategy != StrategyTuple && p.Form == edb.FormCode && !p.FactsOnly {
		unlock()
		proc, err := s.trySetops(fn, name, arity)
		if err != nil || proc != nil {
			return proc, err
		}
		unlock = s.rlock()
		if p = s.kb.db.Proc(name, arity); p == nil {
			unlock()
			return nil, nil
		}
	}

	// Build the pre-unification filter from the call's argument
	// registers. Rule procedures are always loaded whole and frozen for
	// the query (the paper's §3.2.1 "freeze the definition": in-memory
	// switch instructions then dispatch between their clauses); facts
	// relations are filtered per goal, where EDB selectivity pays.
	keys := make([]edb.ArgKey, p.K)
	allWild := true
	for i := 0; i < p.K; i++ {
		if s.opts.DisablePreUnification || !p.FactsOnly {
			keys[i] = edb.WildKey()
			continue
		}
		keys[i] = s.cellArgKey(m.Deref(m.Reg(i)))
		if !keys[i].Wild {
			allWild = false
		}
	}

	cacheKey := cacheKeyFor(name, arity, keys)
	if le, ok := s.loadedCache[cacheKey]; ok {
		unlock()
		return le.proc, nil
	}
	// The proc version is stable while we hold the read lock (writers
	// hold the write lock across store + invalidate), so code fetched
	// below is consistently tagged.
	ver := s.kb.procVersion(name, arity)
	form := p.Form

	var clauses []compiler.ClauseCode // FormCode path
	var blobs [][]byte                // FormSource path
	var clauseIDs []uint32
	switch form {
	case edb.FormCode:
		var ok bool
		clauses, ok = s.kb.lookupShared(cacheKey)
		if ok {
			s.q.CacheHits++
		} else {
			s.q.CacheMisses++
			retr0, pages0 := s.q.Retrievals, s.q.PagesTouched
			scs, err := s.kb.db.RetrieveObs(p, keys, &s.q)
			if err != nil {
				unlock()
				return nil, err
			}
			s.m.Profiler().AttributeIO(fn, s.q.Retrievals-retr0, s.q.PagesTouched-pages0)
			clauses, err = decodeClauses(scs)
			if err != nil {
				unlock()
				return nil, fmt.Errorf("core: %s/%d: %w", name, arity, err)
			}
			s.kb.storeShared(cacheKey, clauses)
		}
	case edb.FormSource:
		retr0, pages0 := s.q.Retrievals, s.q.PagesTouched
		scs, err := s.kb.db.RetrieveObs(p, keys, &s.q)
		if err != nil {
			unlock()
			return nil, err
		}
		s.m.Profiler().AttributeIO(fn, s.q.Retrievals-retr0, s.q.PagesTouched-pages0)
		for _, sc := range scs {
			blobs = append(blobs, sc.Blob)
			clauseIDs = append(clauseIDs, sc.ClauseID)
		}
	}
	unlock()

	var proc *wam.Proc
	switch form {
	case edb.FormCode:
		t1 := time.Now()
		blk, err := loader.BuildBlock(m, name, arity, clauses, loader.Options{
			Index:     !s.opts.DisableIndexing,
			Transient: true,
		})
		s.q.Phases.Add(obs.PhaseLink, time.Since(t1))
		if err != nil {
			return nil, err
		}
		m.AddBlock(blk)
		proc = &wam.Proc{Fn: fn, Arity: arity, Block: blk, External: true, Transient: true}
	case edb.FormSource:
		// A source-form procedure reached from compiled execution:
		// parse and compile on the fly (the hybrid path). Stays
		// per-session: auxiliary predicate naming is per-compiler.
		var terms []term.Term
		t1 := time.Now()
		for i, blob := range blobs {
			tm, _, err := parser.ParseTermWithOps(strings.TrimSuffix(string(blob), "."), s.ops)
			if err != nil {
				return nil, fmt.Errorf("core: %s/%d clause %d: %w", name, arity, clauseIDs[i], err)
			}
			terms = append(terms, tm)
		}
		s.q.Phases.Add(obs.PhaseParse, time.Since(t1))
		units, _, err := s.compileProgram(terms)
		if err != nil {
			return nil, err
		}
		pi := term.Indicator{Name: name, Arity: arity}
		t2 := time.Now()
		blk, err := loader.BuildBlock(m, name, arity, units[pi], loader.Options{
			Index:     !s.opts.DisableIndexing,
			Transient: true,
		})
		s.q.Phases.Add(obs.PhaseLink, time.Since(t2))
		if err != nil {
			return nil, err
		}
		m.AddBlock(blk)
		// Auxiliary predicates (from control constructs) are installed
		// for the query's duration.
		for api, accs := range units {
			if api == pi {
				continue
			}
			if err := s.link(api, accs, true); err != nil {
				return nil, err
			}
			s.queryProcs = append(s.queryProcs, m.Dict.Intern(api.Name, api.Arity))
		}
		proc = &wam.Proc{Fn: fn, Arity: arity, Block: blk, External: true, Transient: true}
	}

	s.loadedCache[cacheKey] = &loadedEntry{proc: proc, name: name, arity: arity, ver: ver}
	if allWild {
		// The whole definition was loaded: install it so every later
		// call — in this query and the following ones — skips the trap
		// entirely. This is the paper's "freezing" of the procedure
		// definition; the in-memory switch instructions now dispatch
		// between its clauses. The stub returns when the stored
		// procedure is updated (invalidation) or the code garbage
		// collector evicts the cache.
		m.DefineProc(proc)
	}
	return proc, nil
}

func decodeClauses(scs []edb.StoredClause) ([]compiler.ClauseCode, error) {
	out := make([]compiler.ClauseCode, 0, len(scs))
	for _, sc := range scs {
		cc, err := loader.DecodeClause(sc.Blob)
		if err != nil {
			return nil, err
		}
		out = append(out, cc)
	}
	return out, nil
}

// cellArgKey derives a pre-unification key from an argument cell.
func (s *Session) cellArgKey(c wam.Cell) edb.ArgKey {
	m := s.m
	switch c.Tag() {
	case wam.TagCon:
		return edb.AtomKey(m.Dict.Name(c.AtomID()))
	case wam.TagInt:
		return edb.IntKey(c.IntVal())
	case wam.TagFlt:
		return edb.FloatKey(floatBits(m.Float(c)))
	case wam.TagLis:
		return edb.ListKey()
	case wam.TagStr:
		f := m.Heap(c.Val())
		return edb.StructKey(m.Dict.Name(f.FunID()), f.FunArity())
	default:
		return edb.WildKey()
	}
}

func cacheKeyFor(name string, arity int, keys []edb.ArgKey) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%d", name, arity)
	for _, k := range keys {
		if k.Wild {
			b.WriteString("|*")
		} else {
			fmt.Fprintf(&b, "|%x", k.Hash)
		}
	}
	return b.String()
}

// endQuery tears down per-query transient state: procedures loaded from
// the EDB, query-local auxiliary predicates and, in baseline mode, rules
// asserted into the interpreter (the paper's "erased to make room").
func (s *Session) endQuery() {
	for _, fn := range s.queryProcs {
		if p := s.m.Proc(fn); p != nil {
			if p.External {
				// Restore the trap stub; the loaded block stays alive
				// because the session code cache owns it.
				s.m.DefineProc(&wam.Proc{Fn: fn, Arity: p.Arity, External: true})
			} else {
				if p.Block != nil {
					s.m.RemoveBlock(p.Block)
				}
				s.m.RemoveProc(fn)
			}
		}
	}
	s.queryProcs = s.queryProcs[:0]
	// The loaded-code cache survives across queries: the paper keeps
	// dynamically loaded procedures in main memory until the code
	// garbage collector reclaims them. A simple epoch clear bounds it.
	if len(s.loadedCache) > loadedCacheLimit {
		s.evictLoadedCode()
	}
	for _, pi := range s.interpLoaded {
		s.in.RetractAll(pi)
	}
	s.interpLoaded = s.interpLoaded[:0]
	for _, c := range s.factCaches {
		for k := range c {
			delete(c, k)
		}
	}
}

// interpTrap serves the baseline interpreter: rules are fetched from the
// EDB in source form, parsed and asserted — the per-use cost the paper's
// §2 itemises. They are erased again at query end.
func (s *Session) interpTrap(in *interp.Interp, pi term.Indicator) (bool, error) {
	unlock := s.rlock()
	p := s.kb.db.Proc(pi.Name, pi.Arity)
	if p == nil {
		unlock()
		return false, nil
	}
	form := p.Form
	// Poor selectivity: the baseline retrieves every clause of the
	// procedure (paper §3.2.1).
	scs, err := s.kb.db.RetrieveObs(p, nil, &s.q)
	unlock()
	if err != nil {
		return false, err
	}
	for _, sc := range scs {
		var tm term.Term
		switch form {
		case edb.FormSource:
			t1 := time.Now()
			tm, _, err = parser.ParseTermWithOps(strings.TrimSuffix(string(sc.Blob), "."), s.ops)
			s.q.Phases.Add(obs.PhaseParse, time.Since(t1))
			if err != nil {
				return false, err
			}
		case edb.FormCode:
			return false, fmt.Errorf("core: %s stored compiled; baseline engine cannot interpret it", pi)
		}
		if err := in.Assert(tm); err != nil {
			return false, err
		}
		s.q.Asserts++
	}
	s.interpLoaded = append(s.interpLoaded, pi)
	return true, nil
}

// registerFactResolver gives the baseline interpreter tuple-at-a-time
// access to a facts-only external procedure — Educe's deterministic
// interface to the record manager (§3.2.1) — instead of assert-based
// loading. Parsed tuples are cached per clause so repeated access models
// cheap tuple interpretation rather than re-parsing.
func (s *Session) registerFactResolver(p *edb.ProcInfo) {
	pi := term.Indicator{Name: p.Name, Arity: p.Arity}
	if s.resolvers[pi] {
		return
	}
	s.resolvers[pi] = true
	// Parsed tuples are cached only for the current query: Educe pays
	// for parsing terms retrieved from the DBMS on each use (§2.3), and
	// the cache is flushed with the rest of the per-query state.
	cache := map[uint32]term.Term{}
	s.factCaches = append(s.factCaches, cache)
	s.in.RegisterExternal(pi, func(goal term.Term, env *interp.Env, emit func() bool) error {
		keys := make([]edb.ArgKey, p.K)
		gargs := goalTermArgs(goal)
		for i := 0; i < p.K && i < len(gargs); i++ {
			keys[i] = argKeyOf(env.ResolveDeep(gargs[i]))
		}
		// The read lock covers only the retrieval: the returned blobs
		// are copies, and emit() may re-enter this resolver (a join of
		// the relation with itself), which must not recurse into the
		// lock.
		unlock := s.rlock()
		scs, err := s.kb.db.RetrieveObs(p, keys, &s.q)
		unlock()
		if err != nil {
			return err
		}
		for _, sc := range scs {
			tm, ok := cache[sc.ClauseID]
			if !ok {
				var perr error
				t1 := time.Now()
				tm, _, perr = parser.ParseTermWithOps(strings.TrimSuffix(string(sc.Blob), "."), s.ops)
				s.q.Phases.Add(obs.PhaseParse, time.Since(t1))
				if perr != nil {
					return perr
				}
				cache[sc.ClauseID] = tm
			}
			mark := env.Mark()
			if env.Unify(goal, term.Rename(tm)) {
				if !emit() {
					return nil
				}
			}
			env.Undo(mark)
		}
		return nil
	})
}

func goalTermArgs(goal term.Term) []term.Term {
	if c, ok := goal.(*term.Compound); ok {
		return c.Args
	}
	return nil
}

// loadedCacheLimit caps the number of resident dynamically loaded
// procedure variants before the code garbage collector clears them
// (paper §3.3.2: main-memory code is garbage collected, the EDB copy
// needs none).
const loadedCacheLimit = 1024

// evictLoadedCode drops every cached loaded procedure, restoring trap
// stubs for the installed ones.
func (s *Session) evictLoadedCode() {
	for k, le := range s.loadedCache {
		if le.proc != nil && le.proc.Block != nil {
			s.m.RemoveBlock(le.proc.Block)
		}
		if le.proc != nil {
			if cur := s.m.Proc(le.proc.Fn); cur == le.proc {
				s.m.DefineProc(&wam.Proc{Fn: le.proc.Fn, Arity: le.proc.Arity, External: true})
			}
		}
		delete(s.loadedCache, k)
	}
}

// InvalidateLoaded drops cached (and installed) code for one external
// procedure — in this session and in the shared knowledge-base cache —
// restoring the trap stub so the next call reloads from the EDB. Other
// sessions reload at their next query. The engine calls it automatically
// when stored clauses change.
func (s *Session) InvalidateLoaded(name string, arity int) {
	s.kb.InvalidateLoaded(name, arity)
	s.invalidateLocal(name, arity)
	s.syncWithKB()
}

// invalidateLocal drops this session's cached (and installed) code for
// one procedure, restoring the trap stub.
func (s *Session) invalidateLocal(name string, arity int) {
	prefix := fmt.Sprintf("%s/%d|", name, arity)
	exact := fmt.Sprintf("%s/%d", name, arity)
	for k, le := range s.loadedCache {
		if k == exact || strings.HasPrefix(k, prefix) {
			if le.proc != nil && le.proc.Block != nil {
				s.m.RemoveBlock(le.proc.Block)
			}
			delete(s.loadedCache, k)
		}
	}
	fn := s.m.Dict.Intern(name, arity)
	if p := s.m.Proc(fn); p != nil && p.Transient {
		s.m.DefineProc(&wam.Proc{Fn: fn, Arity: arity, External: true})
	}
}
