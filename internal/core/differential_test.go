package core

// Differential testing: the WAM-compiled engine and the resolution
// interpreter implement the same language, so every program in the corpus
// must yield identical solution lists on both. This catches compiler,
// emulator and interpreter bugs against each other.

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/interp"
	"repro/internal/parser"
	"repro/internal/term"
)

type diffCase struct {
	name    string
	program string
	query   string
}

var diffCorpus = []diffCase{
	{"facts", "p(1). p(2). p(3).", "p(X)"},
	{"conj", "p(1). p(2). q(2). r(X) :- p(X), q(X).", "r(X)"},
	{"recursion", `
		app([], L, L).
		app([H|T], L, [H|R]) :- app(T, L, R).
	`, "app(X, Y, [1,2,3])"},
	{"cut-commit", `
		max(X, Y, X) :- X >= Y, !.
		max(_, Y, Y).
	`, "max(3, 5, M)"},
	{"cut-in-body", `
		p(1). p(2). p(3).
		firsttwo(X) :- p(X), X < 3.
		f(X) :- firsttwo(X), !.
	`, "f(X)"},
	{"ite", `
		cls(X, pos) :- ( X > 0 -> true ; fail ).
		cls(X, neg) :- ( X > 0 -> fail ; true ).
	`, "cls(-2, C)"},
	{"ite-chain", `
		sgn(X, S) :- ( X > 0 -> S = 1 ; X < 0 -> S = -1 ; S = 0 ).
	`, "sgn(0, S)"},
	{"negation", `
		p(1). p(2).
		notp(X) :- \+ p(X).
		t(X) :- member(X, [1,2,3,4]), \+ p(X).
	`, "t(X)"},
	{"disjunction", `
		d(X) :- ( X = a ; X = b ; X = c ).
	`, "d(X)"},
	{"arith", `
		fact(0, 1) :- !.
		fact(N, F) :- N1 is N - 1, fact(N1, F1), F is N * F1.
	`, "fact(6, F)"},
	{"findall", `
		q(3). q(1). q(2).
		l(L) :- findall(X, q(X), L).
	`, "l(L)"},
	{"structures", `
		tree(node(leaf, 1, node(leaf, 2, leaf))).
		sum(leaf, 0).
		sum(node(L, V, R), S) :- sum(L, SL), sum(R, SR), S is SL + V + SR.
		total(S) :- tree(T), sum(T, S).
	`, "total(S)"},
	{"between-filter", "", "between(1, 10, X), 0 is X mod 3"},
	{"univ-functor", "", "T =.. [f, 1, 2], functor(T, N, A), arg(2, T, X)"},
	{"sortmsort", "", "msort([3,1,2,1], M), sort([3,1,2,1], S)"},
	{"copyterm", "", "copy_term(f(X, g(X, Y)), C)"},
	{"vargoal", "p(7). call_it(G) :- call(G).", "G = p(X), call_it(G)"},
	{"lists", "", "append([1], [2,3], L), reverse(L, R), member(M, R)"},
	{"compare", "", "compare(O, f(a), f(b))"},
	{"deep-backtrack", `
		pick(X) :- member(X, [1,2,3]).
		pair(A, B) :- pick(A), pick(B), A < B.
	`, "pair(A, B)"},
	{"qsort", `
		qsort([], []).
		qsort([H|T], S) :-
			part(T, H, Lo, Hi),
			qsort(Lo, SL), qsort(Hi, SH),
			append(SL, [H|SH], S).
		part([], _, [], []).
		part([X|Xs], P, [X|Lo], Hi) :- X =< P, !, part(Xs, P, Lo, Hi).
		part([X|Xs], P, Lo, [X|Hi]) :- part(Xs, P, Lo, Hi).
	`, "qsort([3,1,4,1,5,9,2,6], S)"},
	{"queens4", `
		queens(N, Qs) :- numlist(1, N, Ns), perm(Ns, Qs), safe(Qs).
		perm([], []).
		perm(L, [H|T]) :- select(H, L, R), perm(R, T).
		safe([]).
		safe([Q|Qs]) :- noattack(Q, Qs, 1), safe(Qs).
		noattack(_, [], _).
		noattack(Q, [Q2|Qs], D) :-
			Q =\= Q2 + D, Q =\= Q2 - D,
			D1 is D + 1, noattack(Q, Qs, D1).
	`, "queens(4, Qs)"},
	{"hanoi", `
		hanoi(0, _, _, _, []) :- !.
		hanoi(N, A, B, C, Ms) :-
			N1 is N - 1,
			hanoi(N1, A, C, B, M1),
			hanoi(N1, C, B, A, M2),
			append(M1, [A-B|M2], Ms).
	`, "hanoi(4, l, r, m, Ms)"},
	{"primes", `
		primes(N, Ps) :- numlist(2, N, Ns), sieve(Ns, Ps).
		sieve([], []).
		sieve([P|Xs], [P|Ps]) :- strike(Xs, P, Rest), sieve(Rest, Ps).
		strike([], _, []).
		strike([X|Xs], P, R) :- 0 is X mod P, !, strike(Xs, P, R).
		strike([X|Xs], P, [X|R]) :- strike(Xs, P, R).
	`, "primes(30, Ps)"},
	{"nested-control", `
		f(X, R) :- ( X > 10 -> ( X > 100 -> R = huge ; R = big ) ; \+ X > 0 -> R = nonpos ; R = small ).
	`, "member(X, [-5, 5, 50, 500]), f(X, R)"},
}

// wamSolutions runs the query on the compiled engine.
func wamSolutions(t *testing.T, c diffCase) []string {
	t.Helper()
	e := newEngine(t, Options{})
	if c.program != "" {
		if err := e.Consult(c.program); err != nil {
			t.Fatalf("consult: %v", err)
		}
	}
	sols, err := e.QueryAll(c.query)
	if err != nil {
		t.Fatalf("wam query: %v", err)
	}
	return renderSolutions(sols)
}

// interpSolutions runs the query on the baseline interpreter.
func interpSolutions(t *testing.T, c diffCase) []string {
	t.Helper()
	in := interp.New()
	if c.program != "" {
		p := parser.New(c.program)
		terms, err := p.ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		for _, tm := range terms {
			if err := in.Assert(tm); err != nil {
				t.Fatal(err)
			}
		}
	}
	goal, vars, err := parser.ParseTerm(c.query)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(vars))
	for n := range vars {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []map[string]term.Term
	err = in.Solve(goal, nil, func(env *interp.Env) bool {
		sol := map[string]term.Term{}
		for _, n := range names {
			sol[n] = env.ResolveDeep(vars[n])
		}
		out = append(out, sol)
		return true
	})
	if err != nil {
		t.Fatalf("interp query: %v", err)
	}
	return renderSolutions(out)
}

// renderSolutions normalises binding maps to comparable strings. The
// engines name fresh variables differently, so every solution row gets its
// variables renamed canonically in first-occurrence order over the sorted
// binding names.
func renderSolutions(sols []map[string]term.Term) []string {
	out := make([]string, 0, len(sols))
	for _, s := range sols {
		names := make([]string, 0, len(s))
		for n := range s {
			names = append(names, n)
		}
		sort.Strings(names)
		ren := map[*term.Var]*term.Var{}
		row := ""
		for _, n := range names {
			row += n + "=" + canonVars(s[n], ren).String() + ";"
		}
		out = append(out, row)
	}
	return out
}

// canonVars renames every variable to _V<k> in first-occurrence order,
// sharing the map across terms of one solution.
func canonVars(t term.Term, ren map[*term.Var]*term.Var) term.Term {
	switch x := t.(type) {
	case *term.Var:
		nv, ok := ren[x]
		if !ok {
			nv = &term.Var{Name: fmt.Sprintf("_V%d", len(ren))}
			ren[x] = nv
		}
		return nv
	case *term.Compound:
		args := make([]term.Term, len(x.Args))
		for i, a := range x.Args {
			args[i] = canonVars(a, ren)
		}
		return term.Comp(x.Functor, args...)
	default:
		return t
	}
}

func TestDifferentialWAMvsInterp(t *testing.T) {
	for _, c := range diffCorpus {
		c := c
		t.Run(c.name, func(t *testing.T) {
			w := wamSolutions(t, c)
			i := interpSolutions(t, c)
			if !reflect.DeepEqual(w, i) {
				t.Fatalf("engines disagree on %q:\n  wam:    %v\n  interp: %v", c.query, w, i)
			}
		})
	}
}

func TestDifferentialExternalStorage(t *testing.T) {
	// The same corpus with the program stored externally in both forms.
	for _, c := range diffCorpus {
		if c.program == "" {
			continue
		}
		c := c
		t.Run(c.name, func(t *testing.T) {
			star := newEngine(t, Options{})
			if err := star.ConsultExternal(c.program); err != nil {
				t.Fatalf("educe* consult: %v", err)
			}
			sols1, err := star.QueryAll(c.query)
			if err != nil {
				t.Fatalf("educe* query: %v", err)
			}
			base := newEngine(t, Options{RuleStorage: RuleStorageSource})
			if err := base.ConsultExternal(c.program); err != nil {
				t.Fatalf("educe consult: %v", err)
			}
			sols2, err := base.QueryAll(c.query)
			if err != nil {
				t.Fatalf("educe query: %v", err)
			}
			w, i := renderSolutions(sols1), renderSolutions(sols2)
			if !reflect.DeepEqual(w, i) {
				t.Fatalf("storage modes disagree on %q:\n  compiled: %v\n  source:   %v", c.query, w, i)
			}
		})
	}
}
