package core

// Query-boundary robustness: runtime panics are contained as Prolog
// system_error terms, and runaway queries are bounded by deadlines and
// interrupts.

import (
	"strings"
	"testing"
	"time"

	"repro/internal/wam"
)

func TestPanicContainedAsSystemError(t *testing.T) {
	e := newEngine(t, Options{})
	e.Machine().RegisterBuiltin(wam.Builtin{Name: "boom", Arity: 0,
		Fn: func(*wam.Machine, []wam.Cell) (bool, error) { panic("kernel bug") }})
	if err := e.Consult(`go :- boom.`); err != nil {
		t.Fatal(err)
	}

	sols, err := e.Query("go")
	if err != nil {
		t.Fatalf("Query itself failed: %v", err)
	}
	if sols.Next() {
		t.Fatal("panicking goal produced a solution")
	}
	err = sols.Err()
	if err == nil {
		t.Fatal("panic vanished: no error reported")
	}
	if !strings.Contains(err.Error(), "system_error") || !strings.Contains(err.Error(), "kernel bug") {
		t.Fatalf("panic surfaced as %q, want a system_error term carrying the panic value", err)
	}
	if got := e.KB().Obs().Counter("core.panics_recovered").Value(); got != 1 {
		t.Fatalf("core.panics_recovered = %d, want 1", got)
	}

	// The session must remain usable for ordinary queries.
	if err := e.Consult(`ok(1).`); err != nil {
		t.Fatal(err)
	}
	if got := values(t, e, "ok(X)", "X"); len(got) != 1 || got[0] != "1" {
		t.Fatalf("session broken after contained panic: %v", got)
	}
}

func TestPanicInSystemErrorIsCatchable(t *testing.T) {
	e := newEngine(t, Options{})
	e.Machine().RegisterBuiltin(wam.Builtin{Name: "boom", Arity: 0,
		Fn: func(*wam.Machine, []wam.Cell) (bool, error) { panic("contained") }})
	// A panic unwinds the Go stack past the WAM, so catch/3 cannot see
	// it mid-flight — but the error a caller gets is a ball term it can
	// match on.
	sols, err := e.Query("boom")
	if err != nil {
		t.Fatal(err)
	}
	sols.Next()
	ball, ok := sols.Err().(*wam.ErrBall)
	if !ok {
		t.Fatalf("panic error is %T, want *wam.ErrBall", sols.Err())
	}
	if !strings.Contains(ball.Term.String(), "system_error") {
		t.Fatalf("ball %s, want system_error", ball.Term)
	}
}

func TestDeadlineStopsRunawayQuery(t *testing.T) {
	e := newEngine(t, Options{})
	e.SetTimeout(50 * time.Millisecond)
	start := time.Now()
	// A goal with an astronomically large search space: between/3
	// enumeration with a failing continuation never terminates on its
	// own within the test's lifetime.
	_, err := e.QueryAll("between(1, 1000000000, X), X < 0")
	elapsed := time.Since(start)
	if err == nil || !strings.Contains(err.Error(), "timeout") {
		t.Fatalf("runaway query ended with %v, want timeout error", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("deadline enforcement took %v", elapsed)
	}

	// Disarming restores normal operation.
	e.SetTimeout(0)
	if got := values(t, e, "between(1, 3, X)", "X"); len(got) != 3 {
		t.Fatalf("after disarm: %v", got)
	}
}

func TestTimeoutIsCatchable(t *testing.T) {
	e := newEngine(t, Options{})
	e.SetTimeout(50 * time.Millisecond)
	defer e.SetTimeout(0)
	got, ok, err := e.QueryOnce("catch((between(1, 1000000000, X), X < 0), error(timeout, _), true)")
	if err != nil {
		t.Fatalf("catch of timeout failed: %v", err)
	}
	if !ok {
		t.Fatal("recovery goal did not succeed")
	}
	_ = got
}

func TestInterruptStopsRunawayQuery(t *testing.T) {
	e := newEngine(t, Options{})
	done := make(chan error, 1)
	go func() {
		_, err := e.QueryAll("between(1, 1000000000, X), X < 0")
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	e.Interrupt()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "interrupted") {
			t.Fatalf("interrupted query ended with %v, want interrupted error", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("interrupt never took effect")
	}
	// The pending-interrupt flag must not leak into the next query.
	if got := values(t, e, "between(1, 3, X)", "X"); len(got) != 3 {
		t.Fatalf("after interrupt: %v", got)
	}
}
