// Package core implements the Educe* engine: the integration of the WAM
// emulator, the incremental compiler, the dynamic loader and the external
// database described throughout the paper. The public API is re-exported
// by the root educe package.
//
// The engine is split into two layers:
//
//   - KnowledgeBase: the shared, concurrency-safe read path — page store
//     and buffer pool, EDB catalog, external dictionary, relational
//     catalog, and the shared loaded-code cache. One KnowledgeBase serves
//     many concurrent sessions.
//   - Session: per-query state — the WAM machine with its internal
//     dictionary, the incremental compiler, dynamic predicates and
//     transient loaded procedures. A Session is single-goroutine.
//   - Engine: a thin compatibility wrapper bundling one private
//     KnowledgeBase with one Session (the original single-session API).
//
// The engine runs in one of two rule-storage modes:
//
//   - RuleStorageCompiled (Educe*): externally stored procedures hold
//     relocatable compiled code; calls to them trap into the dynamic
//     loader, which pre-unifies in the EDB, links the candidate clauses
//     and executes them on the WAM (paper §3.1, §4).
//   - RuleStorageSource (the Educe baseline): externally stored
//     procedures hold source text; queries run on a resolution
//     interpreter that parses and asserts the text on demand — the
//     configuration whose costs §2 of the paper analyses.
package core

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/compiler"
	"repro/internal/dict"
	"repro/internal/edb"
	"repro/internal/interp"
	"repro/internal/loader"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/rel"
	"repro/internal/store"
	"repro/internal/term"
	"repro/internal/wam"
)

// RuleStorage selects how externally stored rules are represented.
type RuleStorage int

// Rule storage modes.
const (
	// RuleStorageCompiled stores relocatable WAM code in the EDB
	// (Educe*, the paper's contribution).
	RuleStorageCompiled RuleStorage = iota
	// RuleStorageSource stores clause text and interprets it (the
	// original Educe, the baseline).
	RuleStorageSource
)

// PhaseStats breaks the rule-management pipeline into the phases the
// paper's §3.1 compares: reading (lexing+parsing), code generation, and
// loader/link time, plus EDB store/retrieve time. It is a view over the
// session's obs.QueryStats accumulation (see Stats.Cost for the full
// phase vector); Retrieve is the sum of the finer-grained edb_fetch and
// preunify phases.
type PhaseStats struct {
	Parse    time.Duration
	Compile  time.Duration
	Link     time.Duration
	Store    time.Duration
	Retrieve time.Duration // EDBFetch + PreUnify
	EDBFetch time.Duration // clause blob fetches
	PreUnify time.Duration // in-store candidate selection + hash filtering
	Exec     time.Duration // WAM / interpreter execution (includes GC)
	GC       time.Duration // WAM garbage-collection pauses (within Exec)
	Asserts  uint64        // baseline-mode assert operations
}

// phaseView projects an obs.QueryStats onto the legacy PhaseStats shape.
func phaseView(qs *obs.QueryStats) PhaseStats {
	ph := &qs.Phases
	return PhaseStats{
		Parse:    ph.Get(obs.PhaseParse),
		Compile:  ph.Get(obs.PhaseCompile),
		Link:     ph.Get(obs.PhaseLink),
		Store:    ph.Get(obs.PhaseStore),
		Retrieve: ph.Get(obs.PhaseEDBFetch) + ph.Get(obs.PhasePreUnify),
		EDBFetch: ph.Get(obs.PhaseEDBFetch),
		PreUnify: ph.Get(obs.PhasePreUnify),
		Exec:     ph.Get(obs.PhaseExec),
		GC:       ph.Get(obs.PhaseGC),
		Asserts:  qs.Asserts,
	}
}

// Stats aggregates engine counters for the benchmark harness. Machine,
// Phases, Cost, Dict and SessionIO are per-session; EDB and IO are shared
// knowledge-base counters.
type Stats struct {
	Machine wam.Stats
	EDB     edb.Stats
	IO      store.IOStats
	// SessionIO is the page traffic attributed to this session's own
	// storage accesses (exact when sessions do not overlap in time;
	// see store.Tally).
	SessionIO store.IOStats
	Phases    PhaseStats
	// Cost is the session's accumulated cost-model view: the full phase
	// vector plus the per-session retrieval/selectivity/cache counters
	// (exact per-session attribution, unlike the shared EDB totals).
	Cost obs.QueryStats
	Dict dict.Stats
}

// Options configures an Engine (or a KnowledgeBase plus its sessions).
type Options struct {
	// StorePath is the page file backing the EDB; empty means in-memory.
	StorePath string
	// PoolPages is the buffer pool size (0 = store.DefaultPoolPages).
	PoolPages int
	// CheckpointBytes is the WAL size past which the store checkpoints
	// and truncates (archives) the log (0 = store default).
	CheckpointBytes int64
	// WALArchiveDir, when non-empty, enables WAL segment archiving: the
	// committed log is preserved in numbered segments there instead of
	// being discarded at checkpoint, enabling point-in-time restore.
	WALArchiveDir string
	// WALArchiveBudget bounds the archive's total bytes; oldest segments
	// are pruned first (0 = unlimited).
	WALArchiveBudget int64
	// DictSegment is the internal dictionary segment size (0 = default).
	DictSegment int
	// DisableGC turns the WAM garbage collector off (ablation A5).
	DisableGC bool
	// DisableIndexing turns first-argument indexing off (ablation A4).
	DisableIndexing bool
	// DisablePreUnification makes EDB retrieval fetch all clauses
	// (ablation A1).
	DisablePreUnification bool
	// RuleStorage selects the mode (default RuleStorageCompiled).
	RuleStorage RuleStorage
	// Strategy selects tuple-at-a-time vs set-at-a-time evaluation of
	// externally stored rule predicates (default StrategyAuto: semi-naive
	// set-at-a-time for eligible recursive predicates, WAM otherwise).
	Strategy Strategy
}

// Session is one Educe* session over a shared KnowledgeBase: the WAM
// machine with its internal dictionary, the incremental compiler, the
// baseline interpreter, dynamic predicates and the per-query transient
// state. A Session must be used from a single goroutine at a time;
// concurrency is obtained by running many sessions over one
// KnowledgeBase.
type Session struct {
	kb   *KnowledgeBase
	opts Options

	m    *wam.Machine
	comp *compiler.Compiler
	ops  *parser.OpTable

	in *interp.Interp // baseline interpreter (source mode)

	// dynamic (assert/retract) predicates: source terms + compiled code.
	dyn map[term.Indicator]*dynPred

	// typed holds declared type signatures (the typed sub-language).
	typed map[term.Indicator][]ArgType

	// per-query transient state.
	queryProcs   []dict.ID // procs to drop at query end
	loadedCache  map[string]*loadedEntry
	interpLoaded []term.Indicator       // baseline-mode asserted predicates
	factCaches   []map[uint32]term.Term // baseline per-query tuple caches

	// resolvers tracks facts-only procedures already given a baseline
	// fact resolver, so late-created procedures can be wired lazily.
	resolvers map[term.Indicator]bool

	// synced is the KB invalidation version this session last
	// reconciled against (see syncWithKB).
	synced uint64

	// txn is the open transaction's snapshot set (nil: none). While set,
	// this session owns the KB write lock (see txn.go).
	txn *sessionTxn

	// strategyDirty defers a mid-query educe_strategy/1 switch to the
	// next query start, when materialized set-at-a-time results can be
	// dropped safely (their blocks may be executing right now).
	strategyDirty bool

	// defTimeout, when positive, re-arms a fresh deadline at every query
	// start (the WithTimeout option); SetTimeout's one-shot deadline is
	// unaffected. defArmed remembers the deadline value armed from
	// defTimeout, so beginQuery can tell its own stale deadline (replace)
	// from a manually set one (keep if earlier).
	defTimeout time.Duration
	defArmed   time.Time

	// quota caps each query's resource consumption (see SetQuota); the
	// machine enforces the heap/trail/solution limits and calls back
	// into quotaHook for the EDB pages-touched limit.
	quota Quota

	// tally attributes buffer-pool traffic to this session while it is
	// inside a storage access.
	tally *store.Tally

	// Observability: q accumulates the current query's phase spans and
	// cost counters (the WAM's phase sink points at q.Phases for GC
	// attribution); cum holds the roll-up of all finished queries and of
	// consult work done between queries. Stats() reports cum+q. The
	// tracer, when set, receives one event group per completed query.
	id     uint64 // session ID, unique within the KB
	q      obs.QueryStats
	cum    obs.QueryStats
	tracer *obs.Tracer

	// Profiling: when enabled the machine carries a wam.Profiler whose
	// per-query counters are drained at query end into qProf (this
	// query's name-keyed profile, feeding the slow-query record), then
	// merged into profile (the session cumulative) and the KB table.
	// slowThresh > 0 arms the slow-query diagnostic log.
	profile    map[string]*obs.PredCounters
	qProf      map[string]*obs.PredCounters
	slowThresh time.Duration

	// current-query trace metadata.
	qid       uint64
	qGoal     string
	qStart    time.Time
	qSolCount int
}

// loadedEntry is one session-resident dynamically loaded procedure, with
// the KB invalidation version of its stored source at link time. setops,
// when non-nil, marks a materialized set-at-a-time result and carries
// the dependency snapshot revalidateSetops checks at query start.
type loadedEntry struct {
	proc   *wam.Proc
	name   string
	arity  int
	ver    uint64
	setops *setopsInfo
}

type dynPred struct {
	terms   []term.Term
	clauses [][]compiler.ClauseCode // compiled units per source clause
}

// Engine is one Educe* engine with a private KnowledgeBase and a single
// Session — the original single-session API, kept as a thin wrapper.
// See educe.Engine for the concurrency contract.
type Engine struct {
	*Session
	kb *KnowledgeBase
}

// New creates an engine: a private knowledge base plus one session.
func New(opts Options) (*Engine, error) {
	kb, err := OpenKB(opts)
	if err != nil {
		return nil, err
	}
	s, err := kb.NewSessionWithOptions(opts)
	if err != nil {
		kb.Close()
		return nil, err
	}
	return &Engine{Session: s, kb: kb}, nil
}

// KB exposes the engine's knowledge base (for sharing it with further
// sessions).
func (e *Engine) KB() *KnowledgeBase { return e.kb }

// Close releases the session and closes the knowledge base's store.
func (e *Engine) Close() error {
	e.Session.Close()
	return e.kb.Close()
}

// NewSessionWithOptions creates a session with explicit per-session
// options (DictSegment, DisableGC, DisableIndexing,
// DisablePreUnification, RuleStorage; store-level fields are ignored).
func (kb *KnowledgeBase) NewSessionWithOptions(opts Options) (*Session, error) {
	segment := opts.DictSegment
	if segment == 0 {
		segment = 4096
	}
	d := dict.New(dict.WithSegmentSize(segment))
	m := wam.NewMachine(d)
	if opts.DisableGC {
		m.SetGC(false)
	}
	s := &Session{
		kb:          kb,
		opts:        opts,
		m:           m,
		comp:        compiler.New(compiler.Options{Transparent: transparentFor(m)}),
		ops:         parser.NewOpTable(),
		in:          interp.New(),
		dyn:         map[term.Indicator]*dynPred{},
		loadedCache: map[string]*loadedEntry{},
		resolvers:   map[term.Indicator]bool{},
		tally:       &store.Tally{},
		synced:      kb.version.Load(),
		id:          kb.nextSessionID(),
	}
	// The machine charges GC pauses to the current query's phase vector;
	// &s.q.Phases is stable for the session's lifetime.
	m.SetPhaseSink(&s.q.Phases)
	m.SetCheckHook(s.quotaHook)
	m.OnUndefined = s.onUndefined
	s.registerEngineBuiltins()
	if err := s.loadBootstrap(); err != nil {
		return nil, err
	}
	s.in.OnUndefined = s.interpTrap
	// Reconnect procedures already stored in the EDB: mark them external
	// so calls trap to the loader, and give the baseline interpreter
	// direct access to facts-only relations.
	kb.mu.RLock()
	procs := kb.db.Procs()
	for _, p := range procs {
		fn := m.Dict.Intern(p.Name, p.Arity)
		if m.Proc(fn) == nil {
			m.DefineProc(&wam.Proc{Fn: fn, Arity: p.Arity, External: true})
		}
		if p.Form == edb.FormSource && p.FactsOnly {
			s.registerFactResolver(p)
		}
	}
	kb.mu.RUnlock()
	return s, nil
}

// transparentFor returns the inline-builtin test bound to machine m.
func transparentFor(m *wam.Machine) func(string, int) bool {
	return func(name string, arity int) bool {
		if !compiler.DefaultTransparent(name, arity) {
			return false
		}
		return m.BuiltinIndex(name, arity) >= 0
	}
}

// Close releases the session's transient state, rolling back any
// transaction left open. The shared knowledge base stays open (close it
// separately); Engine.Close does both.
func (s *Session) Close() error {
	s.autoRollback()
	s.drainProfile()
	s.endQuery()
	for _, le := range s.loadedCache {
		if le.proc != nil && le.proc.Block != nil {
			s.m.RemoveBlock(le.proc.Block)
		}
	}
	s.loadedCache = map[string]*loadedEntry{}
	return nil
}

// KB returns the session's knowledge base.
func (s *Session) KB() *KnowledgeBase { return s.kb }

// Machine exposes the WAM (benchmarks and tests).
func (s *Session) Machine() *wam.Machine { return s.m }

// DB exposes the external database layer.
func (s *Session) DB() *edb.DB { return s.kb.db }

// Catalog exposes the relational catalog.
func (s *Session) Catalog() *rel.Catalog { return s.kb.cat }

// Interp exposes the baseline interpreter.
func (s *Session) Interp() *interp.Interp { return s.in }

// RuleStorage reports the current mode.
func (s *Session) RuleStorage() RuleStorage { return s.opts.RuleStorage }

// SetRuleStorage switches between Educe* and baseline evaluation
// (legacy wrapper; prefer WithRuleStorage at NewSession time). The switch
// is rejected with store.ErrTxnOpen while a transaction is open: the two
// modes resolve clauses through different caches, so changing modes
// mid-transaction would let one goal see pre-snapshot code the rollback
// path cannot restore. On success any loaded compiled code and baseline
// fact caches are dropped, so the next query resolves everything afresh
// in the new mode.
func (s *Session) SetRuleStorage(rs RuleStorage) error {
	if rs == s.opts.RuleStorage {
		return nil
	}
	if s.txn != nil {
		return store.ErrTxnOpen
	}
	s.endQuery()
	s.evictLoadedCode()
	s.opts.RuleStorage = rs
	return nil
}

// Stats returns aggregated counters.
func (s *Session) Stats() Stats {
	cost := s.Cost()
	return Stats{
		Machine:   s.m.Stats(),
		EDB:       s.kb.db.Stats(),
		IO:        s.kb.st.Stats(),
		SessionIO: s.tally.Stats(),
		Phases:    phaseView(&cost),
		Cost:      cost,
		Dict:      s.m.Dict.Stats(),
	}
}

// Cost returns the session's accumulated cost-model counters: finished
// queries plus the one in flight.
func (s *Session) Cost() obs.QueryStats {
	total := s.cum
	total.AddQuery(&s.q)
	return total
}

// ID returns the session's KB-unique identifier (stamped on trace events).
func (s *Session) ID() uint64 { return s.id }

// SetDeadline bounds compiled-mode query execution by wall-clock time:
// once t passes, the running (or any later) query on this session
// aborts with a catchable error(timeout, educe) ball. The zero time
// removes the bound. The deadline is polled amortized in the WAM
// dispatch loop; baseline (source-mode) queries are not covered.
func (s *Session) SetDeadline(t time.Time) { s.m.SetDeadline(t) }

// SetTimeout arms a one-shot deadline d from now; d <= 0 removes any
// deadline (legacy wrapper; prefer WithTimeout at NewSession time, which
// re-arms a fresh budget at every query start instead of bounding all
// queries by one wall-clock instant).
func (s *Session) SetTimeout(d time.Duration) {
	if d <= 0 {
		s.m.SetDeadline(time.Time{})
		return
	}
	s.m.SetDeadline(time.Now().Add(d))
}

// Interrupt asynchronously aborts this session's running compiled-mode
// query with a catchable error(interrupted, educe) ball. Safe to call
// from any goroutine; a pending interrupt is discarded when the next
// query starts.
func (s *Session) Interrupt() { s.m.Interrupt() }

// Quota caps the resources one query may consume. Zero fields are
// unlimited. Every cap surfaces inside the query as a catchable
// error(resource_error(Kind), educe) ball with Kind one of heap, trail,
// pages or solutions, alongside the timeout/interrupt machinery; an
// exhausted query dies but its session stays reusable. Enforcement is
// amortized in the WAM dispatch loop, so a query may overshoot a cap
// slightly before it is killed. Compiled-mode queries only (like
// SetDeadline, the baseline interpreter is not covered).
type Quota struct {
	// HeapCells bounds the WAM heap in cells, measured after garbage
	// collection: only live data counts against the cap.
	HeapCells int
	// TrailEntries bounds the WAM trail length.
	TrailEntries int
	// PagesTouched bounds the buffer-pool accesses one query's EDB
	// retrievals may make (the paper's unit of I/O cost).
	PagesTouched int
	// Solutions bounds the number of solutions a query may deliver.
	Solutions int
}

// SetQuota installs per-query resource caps on this session (the
// imperative form of WithQuota). Unlike
// SetTimeout and Interrupt, SetQuota must be called from the session's
// own goroutine between queries — it is not safe to change a quota while
// a query is in flight. The quota persists until changed; the zero Quota
// removes all caps.
func (s *Session) SetQuota(q Quota) {
	s.quota = q
	s.m.SetQuota(wam.Quota{
		HeapCells:    q.HeapCells,
		TrailEntries: q.TrailEntries,
		Solutions:    q.Solutions,
	})
}

// Quota returns the session's installed per-query resource caps.
func (s *Session) Quota() Quota { return s.quota }

// quotaHook enforces the caps the machine cannot see itself. It is
// polled from the WAM dispatch loop (same cadence as deadlines), reading
// only session-local state.
func (s *Session) quotaHook() error {
	if p := s.quota.PagesTouched; p > 0 && s.q.PagesTouched > uint64(p) {
		return wam.ResourceBall("pages")
	}
	return nil
}

// SetTracer directs the session's per-query trace events to t (nil
// disables tracing; the imperative form of WithTracer). One tracer may be
// shared by many sessions; its output is serialised internally.
func (s *Session) SetTracer(t *obs.Tracer) { s.tracer = t }

// SetTraceWriter is SetTracer with a fresh JSON-lines tracer over w.
func (s *Session) SetTraceWriter(w io.Writer) { s.tracer = obs.NewTracer(w) }

// EnableProfiling turns the per-predicate 4-port profiler on or off for
// this session. While enabled, the WAM records call/exit/redo/fail
// counts and self-time per predicate; at each query end the per-query
// profile is merged into the session's cumulative profile (see Profile)
// and the knowledge base's shared table (KnowledgeBase.Profile). The
// disabled path costs one nil check per port site in the dispatch loop.
// Like SetQuota, call it between queries from the session's goroutine.
func (s *Session) EnableProfiling(on bool) {
	if on {
		if s.m.Profiler() == nil {
			s.m.SetProfiler(wam.NewProfiler())
		}
		if s.profile == nil {
			s.profile = map[string]*obs.PredCounters{}
		}
		return
	}
	s.drainProfile()
	s.m.SetProfiler(nil)
}

// ProfilingEnabled reports whether the per-predicate profiler is on.
func (s *Session) ProfilingEnabled() bool { return s.m.Profiler() != nil }

// SetSlowThreshold arms the slow-query diagnostic log: any query whose
// wall time reaches d emits one slow_query trace record (through the
// session's tracer) with its phase breakdown, hottest predicates and
// access-path selectivity. d <= 0 disarms it. A threshold without a
// tracer logs nothing; profiling enriches the record with per-predicate
// rows but is not required.
func (s *Session) SetSlowThreshold(d time.Duration) { s.slowThresh = d }

// SlowThreshold returns the armed slow-query threshold (0 = disarmed).
func (s *Session) SlowThreshold() time.Duration { return s.slowThresh }

// Profile returns a snapshot of this session's cumulative per-predicate
// profile (finished queries; the in-flight query's counters are drained
// at its end), sorted by predicate indicator.
func (s *Session) Profile() []obs.PredProfile {
	s.drainProfile()
	out := make([]obs.PredProfile, 0, len(s.profile))
	for pred, c := range s.profile {
		out = append(out, obs.PredProfile{Pred: pred, PredCounters: *c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pred < out[j].Pred })
	return out
}

// drainProfile empties the machine profiler into the per-query profile
// (for the slow-query record) and folds it into the session cumulative
// and the KB-wide table. Draining is idempotent: a second drain at the
// same point moves nothing.
func (s *Session) drainProfile() {
	raw := s.m.Profiler().Drain()
	if len(raw) == 0 {
		return
	}
	if s.qProf == nil {
		s.qProf = map[string]*obs.PredCounters{}
	}
	if s.profile == nil {
		s.profile = map[string]*obs.PredCounters{}
	}
	fresh := make(map[string]*obs.PredCounters, len(raw))
	for fn, c := range raw {
		pred := fmt.Sprintf("%s/%d", s.m.Dict.Name(fn), s.m.Dict.Arity(fn))
		if f, ok := fresh[pred]; ok {
			f.Add(c)
		} else {
			cp := *c
			fresh[pred] = &cp
		}
	}
	for pred, c := range fresh {
		if qc, ok := s.qProf[pred]; ok {
			qc.Add(c)
		} else {
			cp := *c
			s.qProf[pred] = &cp
		}
		if sc, ok := s.profile[pred]; ok {
			sc.Add(c)
		} else {
			cp := *c
			s.profile[pred] = &cp
		}
	}
	s.kb.profile.MergeAll(fresh)
}

// ResetStats zeroes this session's own counters: the WAM machine, the
// interpreter, the session I/O tally and the accumulated phase/cost
// stats. It deliberately does NOT touch the shared knowledge-base
// counters (EDB retrievals, pool I/O, code-cache traffic): under
// concurrent sessions those belong to everyone, and resetting them here
// would corrupt the other sessions' view. Use KnowledgeBase.ResetStats
// for the shared counters; Engine.ResetStats (single-session wrapper,
// private KB) does both.
func (s *Session) ResetStats() {
	s.m.ResetStats()
	s.in.ResetStats()
	s.tally.Reset()
	s.cum.Reset()
	s.q.Reset()
	// Drop the session profile without losing the KB attribution: drain
	// first so in-flight counters still reach the shared table.
	s.drainProfile()
	if s.profile != nil {
		s.profile = map[string]*obs.PredCounters{}
	}
	s.qProf = nil
}

// ResetStats zeroes the engine's session counters and its private
// knowledge base's shared counters — the full reset the benchmark
// harness expects from the single-session API.
func (e *Engine) ResetStats() {
	e.Session.ResetStats()
	e.kb.ResetStats()
}

// --- shared-state access helpers --------------------------------------------

// rlock takes the KB read lock and attaches the session's I/O tally,
// returning the matching release. Hold it across one storage access
// (a retrieval, a cursor step), never across WAM execution. A session
// with an open transaction already owns the lock exclusively and only
// attaches the tally.
func (s *Session) rlock() func() {
	if s.txn != nil {
		s.kb.st.Pool().Attach(s.tally)
		return func() { s.kb.st.Pool().Detach(s.tally) }
	}
	s.kb.mu.RLock()
	s.kb.st.Pool().Attach(s.tally)
	return func() {
		s.kb.st.Pool().Detach(s.tally)
		s.kb.mu.RUnlock()
	}
}

// wlock takes the KB write lock (and the tally) for a mutation of shared
// state. Inside a transaction the lock is already held.
func (s *Session) wlock() func() {
	if s.txn != nil {
		s.kb.st.Pool().Attach(s.tally)
		return func() { s.kb.st.Pool().Detach(s.tally) }
	}
	s.kb.mu.Lock()
	s.kb.st.Pool().Attach(s.tally)
	return func() {
		s.kb.st.Pool().Detach(s.tally)
		s.kb.mu.Unlock()
	}
}

// syncWithKB reconciles the session's resident loaded code with the KB's
// invalidation state: any procedure whose stored clauses changed since
// this session linked them is dropped, restoring the trap stub so the
// next call reloads from the EDB. Called at query start, giving each
// query a fresh view of the shared KB.
func (s *Session) syncWithKB() {
	v := s.kb.version.Load()
	if v == s.synced {
		return
	}
	for key, le := range s.loadedCache {
		if s.kb.procVersion(le.name, le.arity) == le.ver {
			continue
		}
		if le.proc != nil && le.proc.Block != nil {
			s.m.RemoveBlock(le.proc.Block)
		}
		delete(s.loadedCache, key)
		fn := s.m.Dict.Intern(le.name, le.arity)
		if p := s.m.Proc(fn); p != nil && p.Transient {
			s.m.DefineProc(&wam.Proc{Fn: fn, Arity: le.arity, External: true})
		}
	}
	s.synced = v
}

// --- consulting -------------------------------------------------------------

// Consult compiles src into main memory (rules resident, like a
// conventional Prolog compiler). The code is private to this session.
func (s *Session) Consult(src string) error {
	terms, err := s.parseProgram(src)
	if err != nil {
		return err
	}
	units, order, err := s.compileProgram(terms)
	if err != nil {
		return err
	}
	for _, pi := range order {
		if err := s.link(pi, units[pi], false); err != nil {
			return err
		}
	}
	return nil
}

// ConsultExternal compiles src and stores every clause in the EDB in the
// session's current rule-storage form. The predicates become external:
// calling them traps into the dynamic loader. Takes the KB write lock.
func (s *Session) ConsultExternal(src string) error {
	terms, err := s.parseProgram(src)
	if err != nil {
		return err
	}
	return s.ConsultExternalTerms(terms)
}

// parseProgram reads all clauses, executing directives.
func (s *Session) parseProgram(src string) ([]term.Term, error) {
	t0 := time.Now()
	defer func() { s.q.Phases.Add(obs.PhaseParse, time.Since(t0)) }()
	p := parser.NewWithOps(src, s.ops)
	var out []term.Term
	for {
		tm, _, err := p.ReadTerm()
		if err != nil {
			return nil, err
		}
		if tm == nil {
			return out, nil
		}
		if d, ok := tm.(*term.Compound); ok && d.Functor == ":-" && len(d.Args) == 1 {
			if err := s.directive(d.Args[0]); err != nil {
				return nil, err
			}
			continue
		}
		out = append(out, tm)
	}
}

func (s *Session) directive(d term.Term) error {
	c, ok := d.(*term.Compound)
	if !ok {
		return fmt.Errorf("core: unsupported directive %s", d)
	}
	switch {
	case c.Functor == "op" && len(c.Args) == 3:
		p, ok1 := c.Args[0].(term.Int)
		ts, ok2 := c.Args[1].(term.Atom)
		name, ok3 := c.Args[2].(term.Atom)
		if !ok1 || !ok2 || !ok3 {
			return fmt.Errorf("core: malformed op/3 directive")
		}
		typ, err := parser.ParseOpType(string(ts))
		if err != nil {
			return err
		}
		return s.ops.Define(int(p), typ, string(name))
	case c.Functor == "dynamic" && len(c.Args) == 1:
		pi, err := parseIndicator(c.Args[0])
		if err != nil {
			return err
		}
		s.ensureDyn(pi)
		return nil
	case c.Functor == "typed" && len(c.Args) == 1:
		return s.typedDirective(c.Args[0])
	}
	return fmt.Errorf("core: unsupported directive %s", d)
}

func parseIndicator(t term.Term) (term.Indicator, error) {
	c, ok := t.(*term.Compound)
	if !ok || c.Functor != "/" || len(c.Args) != 2 {
		return term.Indicator{}, fmt.Errorf("core: expected Name/Arity, got %s", t)
	}
	name, ok1 := c.Args[0].(term.Atom)
	arity, ok2 := c.Args[1].(term.Int)
	if !ok1 || !ok2 {
		return term.Indicator{}, fmt.Errorf("core: expected Name/Arity, got %s", t)
	}
	return term.Indicator{Name: string(name), Arity: int(arity)}, nil
}

// compileProgram compiles clauses grouped by predicate (aux predicates
// included), preserving first-definition order.
func (s *Session) compileProgram(terms []term.Term) (map[term.Indicator][]compiler.ClauseCode, []term.Indicator, error) {
	t0 := time.Now()
	defer func() { s.q.Phases.Add(obs.PhaseCompile, time.Since(t0)) }()
	units := map[term.Indicator][]compiler.ClauseCode{}
	var order []term.Indicator
	for _, tm := range terms {
		ccs, err := s.comp.CompileClause(tm)
		if err != nil {
			return nil, nil, err
		}
		for _, cc := range ccs {
			if _, ok := units[cc.Pred]; !ok {
				order = append(order, cc.Pred)
			}
			units[cc.Pred] = append(units[cc.Pred], cc)
		}
	}
	return units, order, nil
}

// link installs a predicate's clauses on the machine.
func (s *Session) link(pi term.Indicator, ccs []compiler.ClauseCode, transient bool) error {
	t0 := time.Now()
	defer func() { s.q.Phases.Add(obs.PhaseLink, time.Since(t0)) }()
	opts := loader.Options{Index: !s.opts.DisableIndexing, Transient: transient}
	_, err := loader.LinkPredicate(s.m, pi.Name, pi.Arity, ccs, opts)
	return err
}

// storeCompiledClauses compiles and stores clauses (and their auxiliary
// predicates) in the EDB in compiled form. Caller holds the KB write
// lock.
func (s *Session) storeCompiledClauses(terms []term.Term) error {
	for _, tm := range terms {
		head, _ := splitClauseTerm(tm)
		if err := s.checkTyped(head); err != nil {
			return err
		}
		t0 := time.Now()
		ccs, err := s.comp.CompileClause(tm)
		s.q.Phases.Add(obs.PhaseCompile, time.Since(t0))
		if err != nil {
			return err
		}
		_, body := splitClauseTerm(tm)
		// The first unit is the clause itself; the rest are auxiliary
		// predicate clauses that must be stored alongside it. Auxiliary
		// predicates always count as rules (they exist to carry control
		// constructs).
		for i, cc := range ccs {
			keys := argKeysOf(nil)
			isRule := true
			if i == 0 {
				keys = argKeysOf(headArgsOf(head))
				isRule = body != term.TrueAtom
			}
			if err := s.storeOneCompiled(cc, keys, isRule); err != nil {
				return err
			}
		}
	}
	return nil
}

func (s *Session) storeOneCompiled(cc compiler.ClauseCode, keys []edb.ArgKey, isRule bool) error {
	t0 := time.Now()
	defer func() { s.q.Phases.Add(obs.PhaseStore, time.Since(t0)) }()
	db := s.kb.db
	p, err := db.EnsureProc(cc.Pred.Name, cc.Pred.Arity, edb.FormCode)
	if err != nil {
		return err
	}
	if isRule {
		if err := db.MarkRule(p); err != nil {
			return err
		}
	}
	// Register every symbol in the external dictionary (paper §4 item 2).
	for _, sym := range cc.Symbols {
		if _, err := db.Ext().Intern(sym.Name, sym.Arity); err != nil {
			return err
		}
	}
	for len(keys) < p.K {
		keys = append(keys, edb.WildKey())
	}
	if _, err := db.StoreClause(p, keys, loader.EncodeClause(cc)); err != nil {
		return err
	}
	s.invalidateStored(cc.Pred.Name, cc.Pred.Arity)
	s.markExternal(cc.Pred)
	return nil
}

// storeSourceClauses stores clause text (Educe baseline form). Facts-only
// procedures keep the baseline's tuple-at-a-time access path; storing a
// rule switches the procedure to assert-based loading. Caller holds the
// KB write lock.
func (s *Session) storeSourceClauses(terms []term.Term) error {
	t0 := time.Now()
	defer func() { s.q.Phases.Add(obs.PhaseStore, time.Since(t0)) }()
	db := s.kb.db
	touched := map[*edb.ProcInfo]bool{}
	for _, tm := range terms {
		head, body := splitClauseTerm(tm)
		if err := s.checkTyped(head); err != nil {
			return err
		}
		pi := head.Indicator()
		p, err := db.EnsureProc(pi.Name, pi.Arity, edb.FormSource)
		if err != nil {
			return err
		}
		if body != term.TrueAtom {
			if err := db.MarkRule(p); err != nil {
				return err
			}
		}
		touched[p] = true
		keys := argKeysOf(headArgsOf(head))
		for len(keys) < p.K {
			keys = append(keys, edb.WildKey())
		}
		if _, err := db.StoreClause(p, keys, []byte(tm.String()+".")); err != nil {
			return err
		}
		s.invalidateStored(pi.Name, pi.Arity)
		s.markExternal(pi)
	}
	for p := range touched {
		if p.FactsOnly {
			s.registerFactResolver(p)
		}
	}
	return nil
}

// invalidateStored records that a stored procedure changed: the session's
// own resident copy is dropped immediately and the shared cache entry is
// invalidated so other sessions reload at their next query.
func (s *Session) invalidateStored(name string, arity int) {
	s.invalidateLocal(name, arity)
	s.kb.invalidateProc(name, arity)
	s.syncWithKB()
}

func (s *Session) markExternal(pi term.Indicator) {
	fn := s.m.Dict.Intern(pi.Name, pi.Arity)
	if p := s.m.Proc(fn); p == nil {
		s.m.DefineProc(&wam.Proc{Fn: fn, Arity: pi.Arity, External: true})
	} else {
		p.External = true
	}
}

func splitClauseTerm(t term.Term) (head, body term.Term) {
	if c, ok := t.(*term.Compound); ok && c.Functor == ":-" && len(c.Args) == 2 {
		return c.Args[0], c.Args[1]
	}
	return t, term.TrueAtom
}

func headArgsOf(head term.Term) []term.Term {
	if c, ok := head.(*term.Compound); ok {
		return c.Args
	}
	return nil
}

// argKeysOf derives EDB attribute keys from clause head arguments.
func argKeysOf(args []term.Term) []edb.ArgKey {
	keys := make([]edb.ArgKey, 0, len(args))
	for _, a := range args {
		keys = append(keys, argKeyOf(a))
	}
	return keys
}

func argKeyOf(a term.Term) edb.ArgKey {
	switch x := a.(type) {
	case term.Atom:
		return edb.AtomKey(string(x))
	case term.Int:
		return edb.IntKey(int64(x))
	case term.Float:
		return edb.FloatKey(floatBits(float64(x)))
	case *term.Compound:
		if _, ok := term.IsCons(x); ok {
			return edb.ListKey()
		}
		return edb.StructKey(x.Functor, len(x.Args))
	default:
		return edb.WildKey()
	}
}

// ConsultTerms compiles pre-parsed clause terms into main memory (bulk
// loading path for workload generators).
func (s *Session) ConsultTerms(terms []term.Term) error {
	units, order, err := s.compileProgram(terms)
	if err != nil {
		return err
	}
	for _, pi := range order {
		if err := s.link(pi, units[pi], false); err != nil {
			return err
		}
	}
	return nil
}

// ConsultExternalTerms stores pre-parsed clause terms in the EDB in the
// session's current rule-storage form, under the KB write lock.
func (s *Session) ConsultExternalTerms(terms []term.Term) error {
	if s.kb.st.ReadOnly() {
		return store.ErrReadOnly
	}
	unlock := s.wlock()
	defer unlock()
	if s.opts.RuleStorage == RuleStorageSource {
		return s.storeSourceClauses(terms)
	}
	return s.storeCompiledClauses(terms)
}

// Flush writes all buffered pages to the store.
func (s *Session) Flush() error { return s.kb.st.Flush() }

// AssertExternalTerm stores a single clause in the EDB in the session's
// current rule-storage form (the paper's assertion of externally
// maintained code, one of the triggers of §3.3.2's garbage collection).
func (s *Session) AssertExternalTerm(t term.Term) error {
	return s.ConsultExternalTerms([]term.Term{t})
}

// RetractExternal removes the first stored clause matching t (a fact, or
// Head :- Body) from the EDB and reports whether one was removed. Takes
// the KB write lock.
//
// Compiled-form matching compares relocatable code bytes, which is exact
// for clauses without control constructs; clauses containing ;/->/\+
// compile to uniquely named auxiliary predicates and cannot be matched
// this way (an error is returned). Source-form matching unifies terms.
func (s *Session) RetractExternal(t term.Term) (bool, error) {
	if s.kb.st.ReadOnly() {
		return false, store.ErrReadOnly
	}
	unlock := s.wlock()
	defer unlock()
	db := s.kb.db
	head, body := splitClauseTerm(t)
	pi := head.Indicator()
	p := db.Proc(pi.Name, pi.Arity)
	if p == nil {
		return false, nil
	}
	keys := argKeysOf(headArgsOf(head))
	for len(keys) < p.K {
		keys = append(keys, edb.WildKey())
	}
	scs, err := db.RetrieveObs(p, keys, &s.q)
	if err != nil {
		return false, err
	}
	switch p.Form {
	case edb.FormCode:
		if hasControl(body) {
			return false, fmt.Errorf("core: cannot retract compiled clause with control constructs: %s", t)
		}
		ccs, err := compiler.New(compiler.Options{Transparent: transparentFor(s.m)}).CompileClause(t)
		if err != nil {
			return false, err
		}
		want := loader.EncodeClause(ccs[0])
		for _, sc := range scs {
			if string(sc.Blob) == string(want) {
				if err := db.DeleteClause(p, sc); err != nil {
					return false, err
				}
				s.invalidateStored(pi.Name, pi.Arity)
				return true, nil
			}
		}
		return false, nil
	default: // FormSource
		env := interp.NewEnv()
		for _, sc := range scs {
			stored, _, perr := parser.ParseTermWithOps(trimDot(string(sc.Blob)), s.ops)
			if perr != nil {
				return false, perr
			}
			sh, sb := splitClauseTerm(term.Rename(stored))
			mark := env.Mark()
			if env.Unify(head, sh) && env.Unify(body, sb) {
				if err := db.DeleteClause(p, sc); err != nil {
					return false, err
				}
				s.invalidateStored(pi.Name, pi.Arity)
				return true, nil
			}
			env.Undo(mark)
		}
		return false, nil
	}
}

// hasControl reports whether a body contains control constructs that
// compile to auxiliary predicates.
func hasControl(t term.Term) bool {
	c, ok := t.(*term.Compound)
	if !ok {
		return false
	}
	switch {
	case c.Functor == "," && len(c.Args) == 2:
		return hasControl(c.Args[0]) || hasControl(c.Args[1])
	case (c.Functor == ";" || c.Functor == "->") && len(c.Args) == 2:
		return true
	case (c.Functor == "\\+" || c.Functor == "not") && len(c.Args) == 1:
		return true
	}
	return false
}

func trimDot(s string) string {
	for len(s) > 0 && (s[len(s)-1] == '.' || s[len(s)-1] == ' ' || s[len(s)-1] == '\n') {
		s = s[:len(s)-1]
	}
	return s
}

// DropExternal removes an entire externally stored procedure, under the
// KB write lock.
func (s *Session) DropExternal(name string, arity int) error {
	if s.kb.st.ReadOnly() {
		return store.ErrReadOnly
	}
	unlock := s.wlock()
	defer unlock()
	db := s.kb.db
	p := db.Proc(name, arity)
	if p == nil {
		return fmt.Errorf("core: no external procedure %s/%d", name, arity)
	}
	if err := db.DropProc(p); err != nil {
		return err
	}
	s.invalidateStored(name, arity)
	s.m.RemoveProc(s.m.Dict.Intern(name, arity))
	return nil
}
