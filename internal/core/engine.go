// Package core implements the Educe* engine: the integration of the WAM
// emulator, the incremental compiler, the dynamic loader and the external
// database described throughout the paper. The public API is re-exported
// by the root educe package.
//
// The engine runs in one of two rule-storage modes:
//
//   - RuleStorageCompiled (Educe*): externally stored procedures hold
//     relocatable compiled code; calls to them trap into the dynamic
//     loader, which pre-unifies in the EDB, links the candidate clauses
//     and executes them on the WAM (paper §3.1, §4).
//   - RuleStorageSource (the Educe baseline): externally stored
//     procedures hold source text; queries run on a resolution
//     interpreter that parses and asserts the text on demand — the
//     configuration whose costs §2 of the paper analyses.
package core

import (
	"fmt"
	"time"

	"repro/internal/compiler"
	"repro/internal/dict"
	"repro/internal/edb"
	"repro/internal/interp"
	"repro/internal/loader"
	"repro/internal/parser"
	"repro/internal/rel"
	"repro/internal/store"
	"repro/internal/term"
	"repro/internal/wam"
)

// RuleStorage selects how externally stored rules are represented.
type RuleStorage int

// Rule storage modes.
const (
	// RuleStorageCompiled stores relocatable WAM code in the EDB
	// (Educe*, the paper's contribution).
	RuleStorageCompiled RuleStorage = iota
	// RuleStorageSource stores clause text and interprets it (the
	// original Educe, the baseline).
	RuleStorageSource
)

// PhaseStats breaks the rule-management pipeline into the phases the
// paper's §3.1 compares: reading (lexing+parsing), code generation, and
// loader/link time, plus EDB store/retrieve time.
type PhaseStats struct {
	Parse    time.Duration
	Compile  time.Duration
	Link     time.Duration
	Store    time.Duration
	Retrieve time.Duration
	Asserts  uint64 // baseline-mode assert operations
}

// Stats aggregates engine counters for the benchmark harness.
type Stats struct {
	Machine wam.Stats
	EDB     edb.Stats
	IO      store.IOStats
	Phases  PhaseStats
	Dict    dict.Stats
}

// Options configures an Engine.
type Options struct {
	// StorePath is the page file backing the EDB; empty means in-memory.
	StorePath string
	// PoolPages is the buffer pool size (0 = store.DefaultPoolPages).
	PoolPages int
	// DictSegment is the internal dictionary segment size (0 = default).
	DictSegment int
	// DisableGC turns the WAM garbage collector off (ablation A5).
	DisableGC bool
	// DisableIndexing turns first-argument indexing off (ablation A4).
	DisableIndexing bool
	// DisablePreUnification makes EDB retrieval fetch all clauses
	// (ablation A1).
	DisablePreUnification bool
	// RuleStorage selects the mode (default RuleStorageCompiled).
	RuleStorage RuleStorage
}

// Engine is one Educe* session.
type Engine struct {
	opts Options

	m    *wam.Machine
	comp *compiler.Compiler
	ops  *parser.OpTable

	st  *store.Store
	db  *edb.DB
	cat *rel.Catalog

	in *interp.Interp // baseline interpreter (source mode)

	// dynamic (assert/retract) predicates: source terms + compiled code.
	dyn map[term.Indicator]*dynPred

	// typed holds declared type signatures (the typed sub-language).
	typed map[term.Indicator][]ArgType

	// per-query transient state.
	queryProcs   []dict.ID // procs to drop at query end
	loadedCache  map[string]*wam.Proc
	interpLoaded []term.Indicator       // baseline-mode asserted predicates
	factCaches   []map[uint32]term.Term // baseline per-query tuple caches

	phases PhaseStats
}

type dynPred struct {
	terms   []term.Term
	clauses [][]compiler.ClauseCode // compiled units per source clause
}

// New creates an engine.
func New(opts Options) (*Engine, error) {
	segment := opts.DictSegment
	if segment == 0 {
		segment = 4096
	}
	d := dict.New(dict.WithSegmentSize(segment))
	m := wam.NewMachine(d)
	if opts.DisableGC {
		m.SetGC(false)
	}
	st, err := store.Open(opts.StorePath, opts.PoolPages)
	if err != nil {
		return nil, err
	}
	db, err := edb.Open(st)
	if err != nil {
		st.Close()
		return nil, err
	}
	cat, err := rel.OpenCatalog(st)
	if err != nil {
		st.Close()
		return nil, err
	}
	e := &Engine{
		opts:        opts,
		m:           m,
		comp:        compiler.New(compiler.Options{Transparent: transparentFor(m)}),
		ops:         parser.NewOpTable(),
		st:          st,
		db:          db,
		cat:         cat,
		in:          interp.New(),
		dyn:         map[term.Indicator]*dynPred{},
		loadedCache: map[string]*wam.Proc{},
	}
	m.OnUndefined = e.onUndefined
	e.registerEngineBuiltins()
	if err := e.loadBootstrap(); err != nil {
		st.Close()
		return nil, err
	}
	e.in.OnUndefined = e.interpTrap
	// Reconnect procedures already stored in the EDB from a previous
	// session: mark them external so calls trap to the loader, and give
	// the baseline interpreter direct access to facts-only relations.
	for _, p := range db.Procs() {
		fn := m.Dict.Intern(p.Name, p.Arity)
		if m.Proc(fn) == nil {
			m.DefineProc(&wam.Proc{Fn: fn, Arity: p.Arity, External: true})
		}
		if p.Form == edb.FormSource && p.FactsOnly {
			e.registerFactResolver(p)
		}
	}
	return e, nil
}

// transparentFor returns the inline-builtin test bound to machine m.
func transparentFor(m *wam.Machine) func(string, int) bool {
	return func(name string, arity int) bool {
		if !compiler.DefaultTransparent(name, arity) {
			return false
		}
		return m.BuiltinIndex(name, arity) >= 0
	}
}

// Close flushes and closes the store.
func (e *Engine) Close() error { return e.st.Close() }

// Machine exposes the WAM (benchmarks and tests).
func (e *Engine) Machine() *wam.Machine { return e.m }

// DB exposes the external database layer.
func (e *Engine) DB() *edb.DB { return e.db }

// Catalog exposes the relational catalog.
func (e *Engine) Catalog() *rel.Catalog { return e.cat }

// Interp exposes the baseline interpreter.
func (e *Engine) Interp() *interp.Interp { return e.in }

// RuleStorage reports the current mode.
func (e *Engine) RuleStorage() RuleStorage { return e.opts.RuleStorage }

// SetRuleStorage switches between Educe* and baseline evaluation.
func (e *Engine) SetRuleStorage(rs RuleStorage) { e.opts.RuleStorage = rs }

// Stats returns aggregated counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Machine: e.m.Stats(),
		EDB:     e.db.Stats(),
		IO:      e.st.Stats(),
		Phases:  e.phases,
		Dict:    e.m.Dict.Stats(),
	}
}

// ResetStats zeroes all counters.
func (e *Engine) ResetStats() {
	e.m.ResetStats()
	e.db.ResetStats()
	e.st.ResetStats()
	e.in.ResetStats()
	e.phases = PhaseStats{}
}

// --- consulting -------------------------------------------------------------

// Consult compiles src into main memory (rules resident, like a
// conventional Prolog compiler).
func (e *Engine) Consult(src string) error {
	terms, err := e.parseProgram(src)
	if err != nil {
		return err
	}
	units, order, err := e.compileProgram(terms)
	if err != nil {
		return err
	}
	for _, pi := range order {
		if err := e.link(pi, units[pi], false); err != nil {
			return err
		}
	}
	return nil
}

// ConsultExternal compiles src and stores every clause in the EDB in the
// engine's current rule-storage form. The predicates become external:
// calling them traps into the dynamic loader.
func (e *Engine) ConsultExternal(src string) error {
	terms, err := e.parseProgram(src)
	if err != nil {
		return err
	}
	if e.opts.RuleStorage == RuleStorageSource {
		return e.storeSourceClauses(terms)
	}
	return e.storeCompiledClauses(terms)
}

// parseProgram reads all clauses, executing directives.
func (e *Engine) parseProgram(src string) ([]term.Term, error) {
	t0 := time.Now()
	defer func() { e.phases.Parse += time.Since(t0) }()
	p := parser.NewWithOps(src, e.ops)
	var out []term.Term
	for {
		tm, _, err := p.ReadTerm()
		if err != nil {
			return nil, err
		}
		if tm == nil {
			return out, nil
		}
		if d, ok := tm.(*term.Compound); ok && d.Functor == ":-" && len(d.Args) == 1 {
			if err := e.directive(d.Args[0]); err != nil {
				return nil, err
			}
			continue
		}
		out = append(out, tm)
	}
}

func (e *Engine) directive(d term.Term) error {
	c, ok := d.(*term.Compound)
	if !ok {
		return fmt.Errorf("core: unsupported directive %s", d)
	}
	switch {
	case c.Functor == "op" && len(c.Args) == 3:
		p, ok1 := c.Args[0].(term.Int)
		ts, ok2 := c.Args[1].(term.Atom)
		name, ok3 := c.Args[2].(term.Atom)
		if !ok1 || !ok2 || !ok3 {
			return fmt.Errorf("core: malformed op/3 directive")
		}
		typ, err := parser.ParseOpType(string(ts))
		if err != nil {
			return err
		}
		return e.ops.Define(int(p), typ, string(name))
	case c.Functor == "dynamic" && len(c.Args) == 1:
		pi, err := parseIndicator(c.Args[0])
		if err != nil {
			return err
		}
		e.ensureDyn(pi)
		return nil
	case c.Functor == "typed" && len(c.Args) == 1:
		return e.typedDirective(c.Args[0])
	}
	return fmt.Errorf("core: unsupported directive %s", d)
}

func parseIndicator(t term.Term) (term.Indicator, error) {
	c, ok := t.(*term.Compound)
	if !ok || c.Functor != "/" || len(c.Args) != 2 {
		return term.Indicator{}, fmt.Errorf("core: expected Name/Arity, got %s", t)
	}
	name, ok1 := c.Args[0].(term.Atom)
	arity, ok2 := c.Args[1].(term.Int)
	if !ok1 || !ok2 {
		return term.Indicator{}, fmt.Errorf("core: expected Name/Arity, got %s", t)
	}
	return term.Indicator{Name: string(name), Arity: int(arity)}, nil
}

// compileProgram compiles clauses grouped by predicate (aux predicates
// included), preserving first-definition order.
func (e *Engine) compileProgram(terms []term.Term) (map[term.Indicator][]compiler.ClauseCode, []term.Indicator, error) {
	t0 := time.Now()
	defer func() { e.phases.Compile += time.Since(t0) }()
	units := map[term.Indicator][]compiler.ClauseCode{}
	var order []term.Indicator
	for _, tm := range terms {
		ccs, err := e.comp.CompileClause(tm)
		if err != nil {
			return nil, nil, err
		}
		for _, cc := range ccs {
			if _, ok := units[cc.Pred]; !ok {
				order = append(order, cc.Pred)
			}
			units[cc.Pred] = append(units[cc.Pred], cc)
		}
	}
	return units, order, nil
}

// link installs a predicate's clauses on the machine.
func (e *Engine) link(pi term.Indicator, ccs []compiler.ClauseCode, transient bool) error {
	t0 := time.Now()
	defer func() { e.phases.Link += time.Since(t0) }()
	opts := loader.Options{Index: !e.opts.DisableIndexing, Transient: transient}
	_, err := loader.LinkPredicate(e.m, pi.Name, pi.Arity, ccs, opts)
	return err
}

// storeCompiledClauses compiles and stores clauses (and their auxiliary
// predicates) in the EDB in compiled form.
func (e *Engine) storeCompiledClauses(terms []term.Term) error {
	for _, tm := range terms {
		head, _ := splitClauseTerm(tm)
		if err := e.checkTyped(head); err != nil {
			return err
		}
		t0 := time.Now()
		ccs, err := e.comp.CompileClause(tm)
		e.phases.Compile += time.Since(t0)
		if err != nil {
			return err
		}
		_, body := splitClauseTerm(tm)
		// The first unit is the clause itself; the rest are auxiliary
		// predicate clauses that must be stored alongside it. Auxiliary
		// predicates always count as rules (they exist to carry control
		// constructs).
		for i, cc := range ccs {
			keys := argKeysOf(nil)
			isRule := true
			if i == 0 {
				keys = argKeysOf(headArgsOf(head))
				isRule = body != term.TrueAtom
			}
			if err := e.storeOneCompiled(cc, keys, isRule); err != nil {
				return err
			}
		}
	}
	return nil
}

func (e *Engine) storeOneCompiled(cc compiler.ClauseCode, keys []edb.ArgKey, isRule bool) error {
	t0 := time.Now()
	defer func() { e.phases.Store += time.Since(t0) }()
	p, err := e.db.EnsureProc(cc.Pred.Name, cc.Pred.Arity, edb.FormCode)
	if err != nil {
		return err
	}
	if isRule {
		if err := e.db.MarkRule(p); err != nil {
			return err
		}
	}
	// Register every symbol in the external dictionary (paper §4 item 2).
	for _, s := range cc.Symbols {
		if _, err := e.db.Ext().Intern(s.Name, s.Arity); err != nil {
			return err
		}
	}
	for len(keys) < p.K {
		keys = append(keys, edb.WildKey())
	}
	if _, err := e.db.StoreClause(p, keys, loader.EncodeClause(cc)); err != nil {
		return err
	}
	e.invalidateLoaded(cc.Pred.Name, cc.Pred.Arity)
	e.markExternal(cc.Pred)
	return nil
}

// storeSourceClauses stores clause text (Educe baseline form). Facts-only
// procedures keep the baseline's tuple-at-a-time access path; storing a
// rule switches the procedure to assert-based loading.
func (e *Engine) storeSourceClauses(terms []term.Term) error {
	t0 := time.Now()
	defer func() { e.phases.Store += time.Since(t0) }()
	touched := map[*edb.ProcInfo]bool{}
	for _, tm := range terms {
		head, body := splitClauseTerm(tm)
		if err := e.checkTyped(head); err != nil {
			return err
		}
		pi := head.Indicator()
		p, err := e.db.EnsureProc(pi.Name, pi.Arity, edb.FormSource)
		if err != nil {
			return err
		}
		if body != term.TrueAtom {
			if err := e.db.MarkRule(p); err != nil {
				return err
			}
		}
		touched[p] = true
		keys := argKeysOf(headArgsOf(head))
		for len(keys) < p.K {
			keys = append(keys, edb.WildKey())
		}
		if _, err := e.db.StoreClause(p, keys, []byte(tm.String()+".")); err != nil {
			return err
		}
		e.invalidateLoaded(pi.Name, pi.Arity)
		e.markExternal(pi)
	}
	for p := range touched {
		if p.FactsOnly {
			e.registerFactResolver(p)
		}
	}
	return nil
}

func (e *Engine) markExternal(pi term.Indicator) {
	fn := e.m.Dict.Intern(pi.Name, pi.Arity)
	if p := e.m.Proc(fn); p == nil {
		e.m.DefineProc(&wam.Proc{Fn: fn, Arity: pi.Arity, External: true})
	} else {
		p.External = true
	}
}

func splitClauseTerm(t term.Term) (head, body term.Term) {
	if c, ok := t.(*term.Compound); ok && c.Functor == ":-" && len(c.Args) == 2 {
		return c.Args[0], c.Args[1]
	}
	return t, term.TrueAtom
}

func headArgsOf(head term.Term) []term.Term {
	if c, ok := head.(*term.Compound); ok {
		return c.Args
	}
	return nil
}

// argKeysOf derives EDB attribute keys from clause head arguments.
func argKeysOf(args []term.Term) []edb.ArgKey {
	keys := make([]edb.ArgKey, 0, len(args))
	for _, a := range args {
		keys = append(keys, argKeyOf(a))
	}
	return keys
}

func argKeyOf(a term.Term) edb.ArgKey {
	switch x := a.(type) {
	case term.Atom:
		return edb.AtomKey(string(x))
	case term.Int:
		return edb.IntKey(int64(x))
	case term.Float:
		return edb.FloatKey(floatBits(float64(x)))
	case *term.Compound:
		if _, ok := term.IsCons(x); ok {
			return edb.ListKey()
		}
		return edb.StructKey(x.Functor, len(x.Args))
	default:
		return edb.WildKey()
	}
}

// ConsultTerms compiles pre-parsed clause terms into main memory (bulk
// loading path for workload generators).
func (e *Engine) ConsultTerms(terms []term.Term) error {
	units, order, err := e.compileProgram(terms)
	if err != nil {
		return err
	}
	for _, pi := range order {
		if err := e.link(pi, units[pi], false); err != nil {
			return err
		}
	}
	return nil
}

// ConsultExternalTerms stores pre-parsed clause terms in the EDB in the
// engine's current rule-storage form.
func (e *Engine) ConsultExternalTerms(terms []term.Term) error {
	if e.opts.RuleStorage == RuleStorageSource {
		return e.storeSourceClauses(terms)
	}
	return e.storeCompiledClauses(terms)
}

// Flush writes all buffered pages to the store.
func (e *Engine) Flush() error { return e.st.Flush() }

// AssertExternalTerm stores a single clause in the EDB in the engine's
// current rule-storage form (the paper's assertion of externally
// maintained code, one of the triggers of §3.3.2's garbage collection).
func (e *Engine) AssertExternalTerm(t term.Term) error {
	return e.ConsultExternalTerms([]term.Term{t})
}

// RetractExternal removes the first stored clause matching t (a fact, or
// Head :- Body) from the EDB and reports whether one was removed.
//
// Compiled-form matching compares relocatable code bytes, which is exact
// for clauses without control constructs; clauses containing ;/->/\+
// compile to uniquely named auxiliary predicates and cannot be matched
// this way (an error is returned). Source-form matching unifies terms.
func (e *Engine) RetractExternal(t term.Term) (bool, error) {
	head, body := splitClauseTerm(t)
	pi := head.Indicator()
	p := e.db.Proc(pi.Name, pi.Arity)
	if p == nil {
		return false, nil
	}
	keys := argKeysOf(headArgsOf(head))
	for len(keys) < p.K {
		keys = append(keys, edb.WildKey())
	}
	scs, err := e.db.Retrieve(p, keys)
	if err != nil {
		return false, err
	}
	switch p.Form {
	case edb.FormCode:
		if hasControl(body) {
			return false, fmt.Errorf("core: cannot retract compiled clause with control constructs: %s", t)
		}
		ccs, err := compiler.New(compiler.Options{Transparent: transparentFor(e.m)}).CompileClause(t)
		if err != nil {
			return false, err
		}
		want := loader.EncodeClause(ccs[0])
		for _, sc := range scs {
			if string(sc.Blob) == string(want) {
				if err := e.db.DeleteClause(p, sc); err != nil {
					return false, err
				}
				e.invalidateLoaded(pi.Name, pi.Arity)
				return true, nil
			}
		}
		return false, nil
	default: // FormSource
		env := interp.NewEnv()
		for _, sc := range scs {
			stored, _, perr := parser.ParseTermWithOps(trimDot(string(sc.Blob)), e.ops)
			if perr != nil {
				return false, perr
			}
			sh, sb := splitClauseTerm(term.Rename(stored))
			mark := env.Mark()
			if env.Unify(head, sh) && env.Unify(body, sb) {
				if err := e.db.DeleteClause(p, sc); err != nil {
					return false, err
				}
				e.invalidateLoaded(pi.Name, pi.Arity)
				return true, nil
			}
			env.Undo(mark)
		}
		return false, nil
	}
}

// hasControl reports whether a body contains control constructs that
// compile to auxiliary predicates.
func hasControl(t term.Term) bool {
	c, ok := t.(*term.Compound)
	if !ok {
		return false
	}
	switch {
	case c.Functor == "," && len(c.Args) == 2:
		return hasControl(c.Args[0]) || hasControl(c.Args[1])
	case (c.Functor == ";" || c.Functor == "->") && len(c.Args) == 2:
		return true
	case (c.Functor == "\\+" || c.Functor == "not") && len(c.Args) == 1:
		return true
	}
	return false
}

func trimDot(s string) string {
	for len(s) > 0 && (s[len(s)-1] == '.' || s[len(s)-1] == ' ' || s[len(s)-1] == '\n') {
		s = s[:len(s)-1]
	}
	return s
}

// DropExternal removes an entire externally stored procedure.
func (e *Engine) DropExternal(name string, arity int) error {
	p := e.db.Proc(name, arity)
	if p == nil {
		return fmt.Errorf("core: no external procedure %s/%d", name, arity)
	}
	if err := e.db.DropProc(p); err != nil {
		return err
	}
	e.invalidateLoaded(name, arity)
	e.m.RemoveProc(e.m.Dict.Intern(name, arity))
	return nil
}
