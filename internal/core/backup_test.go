package core

// Online backup at the knowledge-base level: the copy loop runs with
// writer sessions committing transactions concurrently (run with -race;
// the CI backup-crash-matrix job does), and every backup must restore
// to exactly the facts committed at its recorded end LSN.

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/parser"
	"repro/internal/store"
)

// TestBackupUnderConcurrentWritersHammer runs 8 writer sessions doing
// transactional assert/retract batches over a shared file-backed KB
// while the main goroutine streams online backups. Each committed
// batch records {commit LSN, per-predicate fact counts} under a test
// mutex; each backup is then restored at its end LSN and must hold
// precisely the counts recorded at the latest commit boundary at or
// below that LSN — proving a backup taken under live writers is
// transaction-consistent, never a torn intermediate.
func TestBackupUnderConcurrentWritersHammer(t *testing.T) {
	const (
		nWriters = 8
		rounds   = 12
		perBatch = 3
	)
	dir := t.TempDir()
	arch := filepath.Join(dir, "arch")
	kb, err := OpenKB(Options{
		StorePath:       filepath.Join(dir, "kb.edb"),
		PoolPages:       256,
		CheckpointBytes: 32 << 10,
		WALArchiveDir:   arch,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer kb.Close()

	seed, err := kb.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()
	var seedSrc strings.Builder
	for w := 0; w < nWriters; w++ {
		fmt.Fprintf(&seedSrc, "w%d(0). ", w)
	}
	if err := seed.ConsultExternal(seedSrc.String()); err != nil {
		t.Fatal(err)
	}
	if err := kb.Flush(); err != nil {
		t.Fatal(err)
	}

	// snap is one commit boundary: the store LSN of the commit marker
	// and the fact counts durable at it. Writers record one per
	// committed batch; mu makes {commit, LSN read, counts} atomic
	// against other writers (the backup copy loop deliberately runs
	// outside it).
	type snap struct {
		lsn    uint64
		counts [nWriters]int
	}
	var mu sync.Mutex
	var counts [nWriters]int
	for w := range counts {
		counts[w] = 1 // the seed fact
	}
	snaps := []snap{{lsn: kb.LSN(), counts: counts}}

	var wg sync.WaitGroup
	errCh := make(chan error, nWriters)
	for w := 0; w < nWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := kb.NewSession()
			if err != nil {
				errCh <- err
				return
			}
			defer s.Close()
			next := 1
			for r := 0; r < rounds; r++ {
				mu.Lock()
				err := func() error {
					if err := s.Begin(); err != nil {
						return err
					}
					var batch []string
					for j := 0; j < perBatch; j++ {
						batch = append(batch, fmt.Sprintf("w%d(%d).", w, next))
						next++
					}
					if err := s.ConsultExternal(strings.Join(batch, " ")); err != nil {
						return err
					}
					delta := perBatch
					if r%3 == 2 {
						tm, _, err := parser.ParseTerm(fmt.Sprintf("w%d(%d)", w, next-1))
						if err != nil {
							return err
						}
						ok, err := s.RetractExternal(tm)
						if err != nil {
							return err
						}
						if !ok {
							return fmt.Errorf("writer %d round %d: retract found nothing", w, r)
						}
						delta--
					}
					if err := s.Commit(); err != nil {
						return err
					}
					counts[w] += delta
					snaps = append(snaps, snap{lsn: kb.LSN(), counts: counts})
					return nil
				}()
				mu.Unlock()
				if err != nil {
					errCh <- fmt.Errorf("writer %d round %d: %v", w, r, err)
					return
				}
			}
		}(w)
	}

	// Stream backups while the writers hammer: at least 3, and keep
	// going until the writers finish so some backups overlap live
	// transactions.
	finished := make(chan struct{})
	go func() { wg.Wait(); close(finished) }()
	var streams []*bytes.Buffer
	var infos []store.BackupInfo
	for {
		var buf bytes.Buffer
		info, err := kb.Backup(&buf)
		if err != nil {
			t.Fatalf("backup %d under writers: %v", len(infos), err)
		}
		streams = append(streams, &buf)
		infos = append(infos, info)
		select {
		case <-finished:
			if len(infos) >= 3 {
				goto writersDone
			}
		default:
		}
		if len(infos) >= 24 {
			break
		}
	}
	<-finished
writersDone:
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	for i, info := range infos {
		path := filepath.Join(dir, fmt.Sprintf("restored-%d.edb", i))
		if err := store.Restore(path, bytes.NewReader(streams[i].Bytes()), arch, info.EndLSN); err != nil {
			t.Fatalf("restore backup %d at LSN %d: %v", i, info.EndLSN, err)
		}
		rkb, err := OpenKB(Options{StorePath: path, PoolPages: 128})
		if err != nil {
			t.Fatalf("open restored backup %d: %v", i, err)
		}
		if err := rkb.Check(); err != nil {
			rkb.Close()
			t.Fatalf("restored backup %d fails integrity check: %v", i, err)
		}
		var want [nWriters]int
		found := false
		for _, s := range snaps {
			if s.lsn <= info.EndLSN {
				want = s.counts
				found = true
			}
		}
		if !found {
			rkb.Close()
			t.Fatalf("backup %d end LSN %d precedes every recorded commit", i, info.EndLSN)
		}
		rs, err := rkb.NewSession()
		if err != nil {
			rkb.Close()
			t.Fatal(err)
		}
		for w := 0; w < nWriters; w++ {
			n, err := rs.QueryCount(fmt.Sprintf("w%d(_)", w))
			if err != nil {
				t.Fatalf("backup %d: count w%d: %v", i, w, err)
			}
			if n != want[w] {
				t.Errorf("backup %d (end LSN %d): w%d has %d facts restored, want %d",
					i, info.EndLSN, w, n, want[w])
			}
		}
		rs.Close()
		rkb.Close()
	}
}
