package educe_test

import (
	"fmt"
	"log"

	"repro/educe"
)

// The basic flow: facts in the external database, rules in main memory,
// one query spanning both.
func Example() {
	eng, err := educe.New()
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	if err := eng.ConsultExternal(`
		parent(tom, bob).
		parent(bob, ann).
	`); err != nil {
		log.Fatal(err)
	}
	if err := eng.Consult(`
		grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
	`); err != nil {
		log.Fatal(err)
	}

	sols, err := eng.Query("grandparent(tom, W)")
	if err != nil {
		log.Fatal(err)
	}
	defer sols.Close()
	for sols.Next() {
		fmt.Println(sols.Binding("W"))
	}
	// Output: ann
}

// QueryAll collects every solution at once.
func ExampleEngine_queryAll() {
	eng, _ := educe.New()
	defer eng.Close()
	eng.Consult("n(1). n(2). n(3).")
	sols, _ := eng.QueryAll("n(X), X > 1")
	for _, s := range sols {
		fmt.Println(s["X"])
	}
	// Output:
	// 2
	// 3
}

// The Educe baseline interprets source-form rules; both modes give the
// same answers, at different cost.
func ExampleRuleStorage() {
	base, _ := educe.NewWithOptions(educe.Options{RuleStorage: educe.RuleStorageSource})
	defer base.Close()
	base.ConsultExternal(`
		edge(a, b). edge(b, c).
		path(X, Y) :- edge(X, Y).
		path(X, Z) :- edge(X, Y), path(Y, Z).
	`)
	n, _ := base.QueryCount("path(a, X)")
	fmt.Println(n, "destinations")
	// Output: 2 destinations
}

// Exceptions thrown by Prolog code are catchable in Prolog and surface as
// Go errors when uncaught.
func ExampleEngine_exceptions() {
	eng, _ := educe.New()
	defer eng.Close()
	eng.Consult(`
		guarded(X, R) :- catch(check(X), bad(Why), R = rejected(Why)).
		check(X) :- X < 0, throw(bad(negative)).
		check(_).
	`)
	sol, _, _ := eng.QueryOnce("guarded(-1, R)")
	fmt.Println(sol["R"])
	_, err := eng.QueryAll("throw(boom)")
	fmt.Println(err)
	// Output:
	// rejected(negative)
	// wam: uncaught exception: boom
}
