package educe_test

import (
	"path/filepath"
	"testing"

	"repro/educe"
	"repro/internal/rel"
)

func TestFacadeTypesAndConstructors(t *testing.T) {
	if educe.IntV(3).I != 3 || educe.FloatV(1.5).F != 1.5 || educe.StringV("s").S != "s" {
		t.Fatal("value constructors broken")
	}
	eng, err := educe.NewWithOptions(educe.Options{DictSegment: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if eng.RuleStorage() != educe.RuleStorageCompiled {
		t.Fatal("default storage mode should be compiled")
	}
	eng.SetRuleStorage(educe.RuleStorageSource)
	if eng.RuleStorage() != educe.RuleStorageSource {
		t.Fatal("mode switch lost")
	}
}

func TestFacadeOpenPersists(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kb.edb")
	e1, err := educe.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.ConsultExternal("f(1)."); err != nil {
		t.Fatal(err)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}
	e2, err := educe.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if n, _ := e2.QueryCount("f(1)"); n != 1 {
		t.Fatal("fact lost across sessions")
	}
}

func TestFacadeRelations(t *testing.T) {
	eng, _ := educe.New()
	defer eng.Close()
	r, err := eng.CreateRelation(educe.Schema{
		Name:  "t",
		Attrs: []educe.Attr{{Name: "k", Type: educe.Int}, {Name: "v", Type: educe.String}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Insert(educe.Tuple{educe.IntV(1), educe.StringV("one")}); err != nil {
		t.Fatal(err)
	}
	rows, err := rel.Collect(rel.SeqScan(eng.Relation("t")))
	if err != nil || len(rows) != 1 {
		t.Fatalf("scan: %v %v", rows, err)
	}
	if err := eng.BindRelation("t"); err != nil {
		t.Fatal(err)
	}
	sol, ok, err := eng.QueryOnce("t(1, V)")
	if err != nil || !ok || sol["V"].String() != "one" {
		t.Fatalf("bound relation query: %v %v %v", sol, ok, err)
	}
}
