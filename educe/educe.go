// Package educe is the public API of this reproduction of Educe* (Bocca,
// ICDE 1990): a knowledge base management system that couples a WAM-based
// Prolog compiler with a relational storage engine and keeps externally
// stored rules as relocatable compiled code.
//
// Quick start:
//
//	eng, err := educe.New()                      // in-memory EDB
//	eng.Consult("likes(sam, curry).")            // rules in main memory
//	eng.ConsultExternal("edge(a, b). ...")       // facts/rules in the EDB
//	sols, _ := eng.Query("edge(a, X)")
//	for sols.Next() { fmt.Println(sols.Binding("X")) }
//
// The engine evaluates queries on the WAM; calls to externally stored
// procedures trap into the dynamic loader, which pre-unifies inside the
// storage engine and links only the candidate clauses. SetRuleStorage
// switches to the Educe baseline (source text + interpreter) used by the
// paper's comparisons.
package educe

import (
	"repro/internal/core"
	"repro/internal/rel"
	"repro/internal/term"
)

// Engine is one Educe* session. Not safe for concurrent use.
type Engine = core.Engine

// Solutions iterates query answers.
type Solutions = core.Solutions

// Stats aggregates engine counters.
type Stats = core.Stats

// PhaseStats breaks down rule-pipeline time (parse/compile/link/store).
type PhaseStats = core.PhaseStats

// Options configures an Engine; the zero value is a usable in-memory
// compiled-mode engine.
type Options = core.Options

// RuleStorage selects how externally stored rules are represented.
type RuleStorage = core.RuleStorage

// Rule storage modes.
const (
	// RuleStorageCompiled stores relocatable WAM code (Educe*).
	RuleStorageCompiled = core.RuleStorageCompiled
	// RuleStorageSource stores clause text and interprets it (Educe).
	RuleStorageSource = core.RuleStorageSource
)

// Term is a Prolog term as returned by Solutions bindings.
type Term = term.Term

// Relational types, for the set-oriented API.
type (
	// Schema describes a relation.
	Schema = rel.Schema
	// Attr is one attribute of a schema.
	Attr = rel.Attr
	// Tuple is a relational row.
	Tuple = rel.Tuple
	// Value is one attribute value.
	Value = rel.Value
)

// Attribute types for schemas.
const (
	Int    = rel.Int
	Float  = rel.Float
	String = rel.String
)

// IntV makes an integer attribute value.
func IntV(v int64) Value { return rel.IntV(v) }

// FloatV makes a float attribute value.
func FloatV(v float64) Value { return rel.FloatV(v) }

// StringV makes a string attribute value.
func StringV(v string) Value { return rel.StringV(v) }

// New creates an engine with default options (in-memory store, compiled
// rule storage, GC and indexing enabled).
func New() (*Engine, error) { return core.New(core.Options{}) }

// NewWithOptions creates an engine with explicit options.
func NewWithOptions(opts Options) (*Engine, error) { return core.New(opts) }

// Open creates an engine backed by the page file at path, creating the
// file if needed and reconnecting to any procedures already stored in it.
func Open(path string) (*Engine, error) { return core.New(core.Options{StorePath: path}) }
