// Package educe is the public API of this reproduction of Educe* (Bocca,
// ICDE 1990): a knowledge base management system that couples a WAM-based
// Prolog compiler with a relational storage engine and keeps externally
// stored rules as relocatable compiled code.
//
// Quick start (single session):
//
//	eng, err := educe.New()                      // in-memory EDB
//	eng.Consult("likes(sam, curry).")            // rules in main memory
//	eng.ConsultExternal("edge(a, b). ...")       // facts/rules in the EDB
//	sols, _ := eng.Query("edge(a, X)")
//	for sols.Next() { fmt.Println(sols.Binding("X")) }
//
// Concurrent serving (shared knowledge base, one session per goroutine):
//
//	kb, err := educe.OpenKB("/data/kb.pages")
//	defer kb.Close()
//	for i := 0; i < nWorkers; i++ {
//		go func() {
//			s, _ := kb.NewSession()
//			defer s.Close()
//			sols, _ := s.Query("edge(a, X)")
//			...
//		}()
//	}
//
// The engine evaluates queries on the WAM; calls to externally stored
// procedures trap into the dynamic loader, which pre-unifies inside the
// storage engine and links only the candidate clauses. SetRuleStorage
// switches to the Educe baseline (source text + interpreter) used by the
// paper's comparisons.
package educe

import (
	"io"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rel"
	"repro/internal/term"
)

// Engine is one Educe* engine: a private KnowledgeBase bundled with a
// single Session — the original single-session API. An Engine (like a
// Session) must be used from one goroutine at a time; to serve
// concurrent queries, share one KnowledgeBase across many Sessions
// (OpenKB / KB.NewSession), or share an Engine's base via Engine.KB().
type Engine = core.Engine

// KnowledgeBase is the shared, durable half of a deployment: page store
// and buffer pool, EDB catalog, external dictionary, relational catalog,
// and the shared loaded-code cache. A KnowledgeBase is safe for
// concurrent use: any number of Sessions may read it in parallel, while
// writes (ConsultExternal, InsertTuples, retracting or dropping stored
// procedures) serialise behind its write lock and invalidate affected
// cached code everywhere.
type KnowledgeBase = core.KnowledgeBase

// Session is one lightweight query context over a KnowledgeBase: the WAM
// machine, internal dictionary, dynamic predicates and per-query
// transients. Sessions are cheap to create and single-goroutine; run one
// per worker. Session.Begin/Commit/Rollback group external writes into a
// transaction that commits or vanishes as a unit (transaction/1 from
// Prolog); any error that kills a query mid-transaction rolls it back
// automatically. See DESIGN.md §12.
type Session = core.Session

// Solutions iterates query answers.
type Solutions = core.Solutions

// Quota caps the resources one query may consume (Session.SetQuota):
// live heap cells, trail entries, EDB pages touched and solutions
// delivered. An exhausted query dies with a catchable
// error(resource_error(Kind), educe) ball; its session stays reusable.
type Quota = core.Quota

// Stats aggregates engine counters.
type Stats = core.Stats

// PhaseStats breaks down rule-pipeline time (parse/compile/link/store).
type PhaseStats = core.PhaseStats

// QueryStats is the per-session cost-model view: phase spans plus the
// retrieval/selectivity/cache counters of the paper's tables.
type QueryStats = obs.QueryStats

// Tracer emits per-query JSON trace events (phase spans + summary).
// Attach one to a session with Session.SetTracer; a single tracer may
// serve many concurrent sessions.
type Tracer = obs.Tracer

// Registry is the KB-wide metrics registry (KnowledgeBase.Obs).
type Registry = obs.Registry

// PredCounters is one predicate's 4-port profile vector: box-model
// call/exit/redo/fail counts, cumulative self-time and attributed EDB
// I/O (Session.EnableProfiling).
type PredCounters = obs.PredCounters

// PredProfile is one named row of a profile snapshot
// (Session.Profile, KnowledgeBase.Profile).
type PredProfile = obs.PredProfile

// ProfileTable is the KB-wide per-predicate profile accumulator
// (KnowledgeBase.Profile).
type ProfileTable = obs.ProfileTable

// NewTracer returns a tracer writing one JSON trace event per line to w.
func NewTracer(w io.Writer) *Tracer { return obs.NewTracer(w) }

// NewDeterministicTracer is NewTracer without record timestamps, for
// golden-file tests of the trace/slow-query schema.
func NewDeterministicTracer(w io.Writer) *Tracer { return obs.NewDeterministicTracer(w) }

// Options configures an Engine; the zero value is a usable in-memory
// compiled-mode engine.
type Options = core.Options

// RuleStorage selects how externally stored rules are represented.
type RuleStorage = core.RuleStorage

// Rule storage modes.
const (
	// RuleStorageCompiled stores relocatable WAM code (Educe*).
	RuleStorageCompiled = core.RuleStorageCompiled
	// RuleStorageSource stores clause text and interprets it (Educe).
	RuleStorageSource = core.RuleStorageSource
)

// Strategy selects how externally stored rule predicates are evaluated:
// tuple-at-a-time on the WAM, or set-at-a-time by the semi-naive
// relational fixpoint driver (DESIGN.md §14).
type Strategy = core.Strategy

// Evaluation strategies.
const (
	// StrategyAuto (the default) uses set-at-a-time evaluation for
	// eligible recursive predicates and the WAM for everything else.
	StrategyAuto = core.StrategyAuto
	// StrategyTuple forces tuple-at-a-time WAM evaluation everywhere.
	StrategyTuple = core.StrategyTuple
	// StrategySet uses set-at-a-time evaluation for any eligible stored
	// rule predicate, recursive or not.
	StrategySet = core.StrategySet
)

// ParseStrategy parses "auto", "tuple" or "set" (the -strategy flag).
func ParseStrategy(s string) (Strategy, error) { return core.ParseStrategy(s) }

// Option configures a Session at creation time (KnowledgeBase.NewSession).
// The With* constructors below consolidate the per-feature Session setters
// into one declarative surface:
//
//	s, err := kb.NewSession(
//	    educe.WithTimeout(2*time.Second),
//	    educe.WithStrategy(educe.StrategySet),
//	)
type Option = core.Option

// Session options (see the core package for full semantics).
var (
	// WithOptions replaces the session-level Options block.
	WithOptions = core.WithOptions
	// WithRuleStorage selects compiled (Educe*) or source (baseline) mode.
	WithRuleStorage = core.WithRuleStorage
	// WithStrategy selects tuple- vs set-at-a-time evaluation.
	WithStrategy = core.WithStrategy
	// WithTimeout arms a per-query wall-clock budget, re-armed each query.
	WithTimeout = core.WithTimeout
	// WithQuota installs per-query resource caps.
	WithQuota = core.WithQuota
	// WithTracer directs per-query trace events to a tracer.
	WithTracer = core.WithTracer
	// WithTraceWriter is WithTracer over a JSON-lines writer.
	WithTraceWriter = core.WithTraceWriter
	// WithSlowThreshold arms the slow-query diagnostic log.
	WithSlowThreshold = core.WithSlowThreshold
	// WithProfiling enables the per-predicate 4-port profiler.
	WithProfiling = core.WithProfiling
)

// Term is a Prolog term as returned by Solutions bindings.
type Term = term.Term

// Relational types, for the set-oriented API.
type (
	// Schema describes a relation.
	Schema = rel.Schema
	// Attr is one attribute of a schema.
	Attr = rel.Attr
	// Tuple is a relational row.
	Tuple = rel.Tuple
	// Value is one attribute value.
	Value = rel.Value
)

// Attribute types for schemas.
const (
	Int    = rel.Int
	Float  = rel.Float
	String = rel.String
)

// IntV makes an integer attribute value.
func IntV(v int64) Value { return rel.IntV(v) }

// FloatV makes a float attribute value.
func FloatV(v float64) Value { return rel.FloatV(v) }

// StringV makes a string attribute value.
func StringV(v string) Value { return rel.StringV(v) }

// New creates an engine with default options (in-memory store, compiled
// rule storage, GC and indexing enabled).
func New() (*Engine, error) { return core.New(core.Options{}) }

// NewWithOptions creates an engine with explicit options.
func NewWithOptions(opts Options) (*Engine, error) { return core.New(opts) }

// Open creates an engine backed by the page file at path, creating the
// file if needed and reconnecting to any procedures already stored in it.
func Open(path string) (*Engine, error) { return core.New(core.Options{StorePath: path}) }

// OpenKB opens (or creates) a knowledge base backed by the page file at
// path (empty for in-memory) for concurrent multi-session serving.
// Create query contexts with NewSession.
func OpenKB(path string) (*KnowledgeBase, error) {
	return core.OpenKB(core.Options{StorePath: path})
}

// OpenKBWithOptions opens a knowledge base with explicit options;
// session-level options become the defaults for NewSession.
func OpenKBWithOptions(opts Options) (*KnowledgeBase, error) { return core.OpenKB(opts) }
