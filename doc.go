// Package repro is the root of a reproduction of "Compilation of Logic
// Programs to Implement Very Large Knowledge Base Systems — A Case Study:
// Educe*" (J. Bocca, ICDE 1990).
//
// The public API lives in package educe; the benchmark harness that
// regenerates the paper's tables is bench_test.go in this directory and
// the cmd/benchtool executable. See README.md, DESIGN.md and
// EXPERIMENTS.md.
package repro
