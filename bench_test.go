package repro

// One benchmark per table/figure of the paper's evaluation (§5), plus the
// ablation benchmarks for the design decisions of §3. See DESIGN.md for
// the experiment index and EXPERIMENTS.md for recorded results.

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/bench/icheck"
	"repro/internal/bench/mvv"
	"repro/internal/bench/wisconsin"
	"repro/internal/core"
	"repro/internal/dict"
	"repro/internal/wam"
)

// --- shared lazily-built environments ---------------------------------------

var (
	mvvOnce sync.Once
	mvvData *mvv.Data
	mvvEng  map[bench.System]*core.Engine
	mvvErr  error

	wiscOnce sync.Once
	wiscEnv  *bench.WisconsinEnv
	wiscErr  error

	icOnce sync.Once
	icEng  map[bench.System]*core.Engine
	icErr  error

	mvvKBOnce sync.Once
	mvvKB     *core.KnowledgeBase
	mvvKBData *mvv.Data
	mvvKBErr  error

	wiscKBOnce sync.Once
	wiscKB     *core.KnowledgeBase
	wiscKBErr  error
)

func mvvSetup(b *testing.B) (map[bench.System]*core.Engine, *mvv.Data) {
	b.Helper()
	mvvOnce.Do(func() {
		mvvData = mvv.Generate()
		mvvEng = map[bench.System]*core.Engine{}
		for _, sys := range []bench.System{bench.EduceStar, bench.Educe} {
			e, err := bench.SetupMVV(sys, mvvData)
			if err != nil {
				mvvErr = err
				return
			}
			mvvEng[sys] = e
		}
	})
	if mvvErr != nil {
		b.Fatal(mvvErr)
	}
	return mvvEng, mvvData
}

func wiscSetup(b *testing.B) *bench.WisconsinEnv {
	b.Helper()
	wiscOnce.Do(func() { wiscEnv, wiscErr = bench.SetupWisconsin(10000) })
	if wiscErr != nil {
		b.Fatal(wiscErr)
	}
	return wiscEnv
}

func icSetup(b *testing.B) map[bench.System]*core.Engine {
	b.Helper()
	icOnce.Do(func() {
		icEng = map[bench.System]*core.Engine{}
		for _, sys := range []bench.System{bench.GoodCompiler, bench.EduceStar} {
			e, err := bench.SetupIC(sys)
			if err != nil {
				icErr = err
				return
			}
			icEng[sys] = e
		}
	})
	if icErr != nil {
		b.Fatal(icErr)
	}
	return icEng
}

// --- E1: Table 1 — MVV times -------------------------------------------------

func benchMVV(b *testing.B, sys bench.System, class int) {
	engines, data := mvvSetup(b)
	e := engines[sys]
	queries := data.Class1
	if class == 2 {
		queries = data.Class2
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.RunMVVClass(e, queries); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMVVClass1EduceStar(b *testing.B) { benchMVV(b, bench.EduceStar, 1) }
func BenchmarkMVVClass2EduceStar(b *testing.B) { benchMVV(b, bench.EduceStar, 2) }
func BenchmarkMVVClass1Educe(b *testing.B)     { benchMVV(b, bench.Educe, 1) }
func BenchmarkMVVClass2Educe(b *testing.B)     { benchMVV(b, bench.Educe, 2) }

// Profiled variant: same class-1 workload with the 4-port profiler on.
// Diffing this against BenchmarkMVVClass1EduceStar measures the enabled
// profiler's overhead; BenchmarkMVVClass1EduceStar itself (profiler off,
// one nil check per port site) must stay within 5% of the recorded
// pre-profiler baseline in EXPERIMENTS.md.
func BenchmarkMVVClass1Profiled(b *testing.B) {
	kb, data := mvvKBSetup(b)
	s, err := bench.NewMVVSession(kb)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	s.EnableProfiling(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.RunMVVClassSession(s, data.Class1); err != nil {
			b.Fatal(err)
		}
	}
}

// File-backed variants: same workload through the durable store —
// checksummed frames, write-ahead log, recovery metadata — to measure
// the cost of crash safety against the in-memory baselines above.
func benchMVVFile(b *testing.B, class int) {
	data := mvv.Generate()
	e, err := bench.SetupMVVAt(bench.EduceStar, data, filepath.Join(b.TempDir(), "mvv.edb"))
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	queries := data.Class1
	if class == 2 {
		queries = data.Class2
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.RunMVVClass(e, queries); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMVVClass1EduceStarFile(b *testing.B) { benchMVVFile(b, 1) }
func BenchmarkMVVClass2EduceStarFile(b *testing.B) { benchMVVFile(b, 2) }

// --- E1 concurrent: N sessions over one shared knowledge base -----------------

func mvvKBSetup(b *testing.B) (*core.KnowledgeBase, *mvv.Data) {
	b.Helper()
	mvvKBOnce.Do(func() {
		mvvKBData = mvv.Generate()
		mvvKB, mvvKBErr = bench.SetupMVVKB(mvvKBData)
	})
	if mvvKBErr != nil {
		b.Fatal(mvvKBErr)
	}
	return mvvKB, mvvKBData
}

// BenchmarkMVVParallel serves the mixed MVV workload from GOMAXPROCS
// concurrent sessions sharing one knowledge base; one op is one query.
// Compare with the single-session Class benchmarks to see the scaling of
// the shared read path.
func BenchmarkMVVParallel(b *testing.B) {
	kb, data := mvvKBSetup(b)
	queries := append(append([]string{}, data.Class1...), data.Class2...)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		s, err := bench.NewMVVSession(kb)
		if err != nil {
			b.Error(err)
			return
		}
		defer s.Close()
		i := 0
		for pb.Next() {
			q := queries[i%len(queries)]
			i++
			if _, err := s.QueryCount(q); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// --- E2/E3: Tables 2a/2b — Wisconsin ----------------------------------------

func benchWisc(b *testing.B, f func(*bench.WisconsinEnv) (int, error)) {
	env := wiscSetup(b)
	st := env.Engine.DB().Store()
	st.ResetStats()
	b.ResetTimer()
	rows := 0
	for i := 0; i < b.N; i++ {
		n, err := f(env)
		if err != nil {
			b.Fatal(err)
		}
		rows = n
	}
	b.StopTimer()
	io := st.Stats()
	b.ReportMetric(float64(rows), "rows")
	b.ReportMetric(float64(io.Accesses)/float64(b.N), "bufacc/op")
	b.ReportMetric(float64(io.Reads)/float64(b.N), "pgreads/op")
	b.ReportMetric(float64(io.Writes)/float64(b.N), "pgwrites/op")
}

func BenchmarkWisconsinSel1Pct(b *testing.B) {
	benchWisc(b, func(e *bench.WisconsinEnv) (int, error) { return wisconsin.Select1Pct(e.A) })
}

func BenchmarkWisconsinSel10Pct(b *testing.B) {
	benchWisc(b, func(e *bench.WisconsinEnv) (int, error) { return wisconsin.Select10Pct(e.A) })
}

func BenchmarkWisconsinSelOne(b *testing.B) {
	benchWisc(b, func(e *bench.WisconsinEnv) (int, error) { return wisconsin.SelectOne(e.A) })
}

func BenchmarkWisconsinJoin2(b *testing.B) {
	benchWisc(b, func(e *bench.WisconsinEnv) (int, error) { return wisconsin.JoinAselB(e.A, e.B) })
}

func BenchmarkWisconsinJoin3(b *testing.B) {
	benchWisc(b, func(e *bench.WisconsinEnv) (int, error) {
		return wisconsin.JoinCselAselB(e.A, e.B, e.C)
	})
}

func BenchmarkWisconsinTermSelOne(b *testing.B) {
	env := wiscSetup(b)
	q := wisconsin.TermQueries("wisc_a", "wisc_b", "wisc_c", env.N)["selone"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Engine.QueryCount(q); err != nil {
			b.Fatal(err)
		}
	}
}

func wiscKBSetup(b *testing.B) *core.KnowledgeBase {
	b.Helper()
	wiscKBOnce.Do(func() { wiscKB, wiscKBErr = bench.SetupWisconsinKB(10000) })
	if wiscKBErr != nil {
		b.Fatal(wiscKBErr)
	}
	return wiscKB
}

// BenchmarkWisconsinParallel drives the term-oriented one-row selection
// from GOMAXPROCS concurrent sessions over one shared knowledge base
// (each session has the relations bound as predicates; the buffer pool
// and indices are shared).
func BenchmarkWisconsinParallel(b *testing.B) {
	kb := wiscKBSetup(b)
	q := wisconsin.TermQueries("wisc_a", "wisc_b", "wisc_c", 10000)["selone"]
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		s, err := bench.NewWisconsinSession(kb)
		if err != nil {
			b.Error(err)
			return
		}
		defer s.Close()
		for pb.Next() {
			if _, err := s.QueryCount(q); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkWisconsinTermSel1Pct(b *testing.B) {
	env := wiscSetup(b)
	q := wisconsin.TermQueries("wisc_a", "wisc_b", "wisc_c", env.N)["sel1pct"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Engine.QueryCount(q); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E4: Table 3 — integrity-check preprocess --------------------------------

func benchIC(b *testing.B, sys bench.System) {
	engines := icSetup(b)
	e := engines[sys]
	updates := icheck.Updates()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range updates {
			if _, err := e.QueryAll(q); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkIntegrityPreprocessGC(b *testing.B)        { benchIC(b, bench.GoodCompiler) }
func BenchmarkIntegrityPreprocessEduceStar(b *testing.B) { benchIC(b, bench.EduceStar) }

// --- E6: compile-phase split ---------------------------------------------------

func BenchmarkCompilePhases(b *testing.B) {
	e, err := core.New(core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	src := mvv.Rules + icheck.Program
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Consult(src); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	ph := e.Stats().Phases
	total := ph.Parse + ph.Compile + ph.Link
	if total > 0 {
		b.ReportMetric(100*float64(ph.Parse)/float64(total), "parse%")
		b.ReportMetric(100*float64(ph.Compile)/float64(total), "codegen%")
		b.ReportMetric(100*float64(ph.Link)/float64(total), "link%")
	}
}

// --- E7: per-use rule cost ------------------------------------------------------

func benchRuleUse(b *testing.B, sys bench.System) {
	opts := core.Options{}
	if sys == bench.Educe {
		opts.RuleStorage = core.RuleStorageSource
	}
	e, err := core.New(opts)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	src := "f(0, 1).\nf(N, V) :- N > 0, N1 is N - 1, f(N1, V1), V is V1 + N.\nwork :- f(60, _), f(61, _), f(62, _), f(63, _), f(64, _).\n"
	if err := e.ConsultExternal(src); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.QueryAll("work"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRuleUseEduceStar(b *testing.B) { benchRuleUse(b, bench.EduceStar) }
func BenchmarkRuleUseEduce(b *testing.B)     { benchRuleUse(b, bench.Educe) }

// --- A1: pre-unification on/off ------------------------------------------------

func benchPreUnification(b *testing.B, disable bool) {
	// Measures the cost of one dynamic load (trap -> EDB retrieval ->
	// link) with and without the pre-unification filter. The loaded code
	// is invalidated between iterations so every query pays a fresh
	// load; without invalidation the session code cache would hide the
	// retrieval entirely (the frozen-definition fast path).
	e, err := core.New(core.Options{DisablePreUnification: disable})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	var src string
	for i := 0; i < 2000; i++ {
		src += fmt.Sprintf("fact(k%d, %d).\n", i, i)
	}
	if err := e.ConsultExternal(src); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.InvalidateLoaded("fact", 2)
		q := fmt.Sprintf("fact(k%d, V)", i%2000)
		if _, err := e.QueryAll(q); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := e.Stats()
	b.ReportMetric(float64(st.EDB.CandidatesReturned)/float64(st.EDB.Retrievals), "candidates/retrieval")
}

func BenchmarkPreUnificationOn(b *testing.B)  { benchPreUnification(b, false) }
func BenchmarkPreUnificationOff(b *testing.B) { benchPreUnification(b, true) }

// --- A2/A4: first-argument indexing & choice-point elision -----------------------

func benchIndexing(b *testing.B, disable bool) {
	e, err := core.New(core.Options{DisableIndexing: disable})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	var src string
	for i := 0; i < 500; i++ {
		src += fmt.Sprintf("big(c%d, %d).\n", i, i)
	}
	if err := e.Consult(src); err != nil {
		b.Fatal(err)
	}
	e.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := fmt.Sprintf("big(c%d, V)", i%500)
		if _, err := e.QueryAll(q); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := e.Stats().Machine
	b.ReportMetric(float64(st.ChoicePoints)/float64(b.N), "choicepoints/op")
	b.ReportMetric(float64(st.Instructions)/float64(b.N), "instrs/op")
}

func BenchmarkFirstArgIndexingOn(b *testing.B)  { benchIndexing(b, false) }
func BenchmarkFirstArgIndexingOff(b *testing.B) { benchIndexing(b, true) }

// --- A3: dictionary-ID unification vs string comparison --------------------------

var sinkBool bool

func BenchmarkDictUnifyIDs(b *testing.B) {
	// Atom identity via dictionary IDs: one 64-bit compare, independent
	// of name length (the paper's §3.3.1 design point 1).
	m := wam.NewMachine(nil)
	long := make([]byte, 256)
	for i := range long {
		long[i] = byte('a' + i%26)
	}
	a := wam.MakeCon(m.Dict.Intern(string(long), 0))
	c := wam.MakeCon(m.Dict.Intern(string(long), 0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkBool = a == c
	}
}

func BenchmarkDictUnifyStrings(b *testing.B) {
	// The counterfactual: comparing the atom names as strings on every
	// unification, cost growing with name length.
	long := make([]byte, 256)
	for i := range long {
		long[i] = byte('a' + i%26)
	}
	s1 := string(long)
	s2 := string(append([]byte(nil), long...)) // distinct backing array
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkBool = s1 == s2
	}
}

// --- A5: GC overhead ---------------------------------------------------------------

func benchGC(b *testing.B, disable bool) {
	e, err := core.New(core.Options{DisableGC: disable})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	e.Machine().SetGCThreshold(64 * 1024)
	e.Consult(`
		build(0, []) :- !.
		build(N, [N|T]) :- N1 is N - 1, build(N1, T).
		churn(0) :- !.
		churn(N) :- build(400, _), N1 is N - 1, churn(N1).
	`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.QueryAll("churn(200)"); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(e.Stats().Machine.GCRuns)/float64(b.N), "gcruns/op")
}

func BenchmarkGCOverheadEnabled(b *testing.B)  { benchGC(b, false) }
func BenchmarkGCOverheadDisabled(b *testing.B) { benchGC(b, true) }

// --- A6: dictionary growth and balancing ---------------------------------------------

func BenchmarkDictGrowth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := dict.New(dict.WithSegmentSize(1024))
		for j := 0; j < 20000; j++ {
			d.Intern(fmt.Sprintf("atom_%d", j), j%4)
		}
		if i == 0 {
			b.ReportMetric(float64(d.Segments()), "segments")
		}
	}
}

// --- classic Prolog benchmarks (machine throughput context) ------------------

// BenchmarkNrev30 is the classic naive-reverse benchmark (496 logical
// inferences per run on a 30-element list); ns/op / 496 gives the
// emulator's LIPS figure, contextualising the paper-scale results.
func BenchmarkNrev30(b *testing.B) {
	e, err := core.New(core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	e.Consult(`
		nrev([], []).
		nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R).
		run :- nrev([1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20,
		              21,22,23,24,25,26,27,28,29,30], _).
	`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.QueryAll("run"); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(496/(perOp/1e9)/1e6, "MLIPS")
}

// BenchmarkQueens8 stresses backtracking and choice-point machinery.
func BenchmarkQueens8(b *testing.B) {
	e, err := core.New(core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	e.Consult(`
		queens(N, Qs) :- numlist(1, N, Ns), perm(Ns, Qs), safe(Qs).
		perm([], []).
		perm(L, [H|T]) :- select(H, L, R), perm(R, T).
		safe([]).
		safe([Q|Qs]) :- noattack(Q, Qs, 1), safe(Qs).
		noattack(_, [], _).
		noattack(Q, [Q2|Qs], D) :-
			Q =\= Q2 + D, Q =\= Q2 - D,
			D1 is D + 1, noattack(Q, Qs, D1).
	`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, ok, err := e.QueryOnce("queens(8, Qs)")
		if err != nil || !ok {
			b.Fatalf("queens: %v %v", ok, err)
		}
		_ = sol
	}
}

// --- A2: choice-point elision on EDB access -----------------------------------

// benchCPElision measures choice points per EDB fact access: with
// type+value indexing the deterministic collect interface creates none
// for selective calls (paper §3.2.1); without it every access carries a
// repeat-style choice point chain.
func benchCPElision(b *testing.B, disable bool) {
	// The "off" configuration is the naive path: no EDB pre-unification
	// (every clause is loaded) and no switch dispatch (a try/retry chain
	// walks them with a live choice point), the repeat-style access the
	// paper argues against.
	e, err := core.New(core.Options{DisableIndexing: disable, DisablePreUnification: disable})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	var src string
	for i := 0; i < 300; i++ {
		src += fmt.Sprintf("row(r%d, %d).\n", i, i)
	}
	if err := e.ConsultExternal(src); err != nil {
		b.Fatal(err)
	}
	e.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := fmt.Sprintf("row(r%d, V)", i%300)
		if _, err := e.QueryAll(q); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(e.Stats().Machine.ChoicePoints)/float64(b.N), "choicepoints/op")
}

func BenchmarkChoicePointElisionOn(b *testing.B)  { benchCPElision(b, false) }
func BenchmarkChoicePointElisionOff(b *testing.B) { benchCPElision(b, true) }
