package repro

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/bench/mvv"
	"repro/internal/core"
	"repro/internal/obs"
)

// TestTracedMVVQuery runs one MVV query under tracing in both engine
// configurations and validates the emitted trace: every record parses as
// JSON, all seven query phases appear as spans, and the summary carries
// the cost counters. This is the end-to-end check CI runs explicitly.
func TestTracedMVVQuery(t *testing.T) {
	data := mvv.Generate()
	for _, sys := range []bench.System{bench.EduceStar, bench.Educe} {
		t.Run(string(sys), func(t *testing.T) {
			e, err := bench.SetupMVV(sys, data)
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			var buf bytes.Buffer
			e.SetTraceWriter(&buf)
			if _, err := e.QueryCount(data.Class1[0]); err != nil {
				t.Fatal(err)
			}
			lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
			if len(lines) != obs.NumQueryPhases+1 {
				t.Fatalf("got %d trace records, want %d:\n%s", len(lines), obs.NumQueryPhases+1, buf.String())
			}
			phases := map[string]bool{}
			var summary map[string]any
			for _, ln := range lines {
				var rec map[string]any
				if err := json.Unmarshal([]byte(ln), &rec); err != nil {
					t.Fatalf("invalid trace JSON %q: %v", ln, err)
				}
				switch rec["msg"] {
				case obs.EventSpan:
					phases[rec["phase"].(string)] = true
				case obs.EventQuery:
					summary = rec
				default:
					t.Fatalf("unexpected record %q", ln)
				}
			}
			for _, p := range obs.QueryPhases() {
				if !phases[p.String()] {
					t.Errorf("missing %s span", p)
				}
			}
			if summary == nil {
				t.Fatal("missing query summary record")
			}
			wantMode := "compiled"
			if sys == bench.Educe {
				wantMode = "source"
			}
			if summary["mode"] != wantMode {
				t.Errorf("mode = %v, want %v", summary["mode"], wantMode)
			}
			if summary["goal"] != data.Class1[0] {
				t.Errorf("goal = %v", summary["goal"])
			}
			counters, ok := summary["counters"].(map[string]any)
			if !ok || counters["retrievals"].(float64) == 0 {
				t.Errorf("summary must report EDB retrievals: %v", summary)
			}
			// The paper's headline effect: pre-unification passes only a
			// fraction of the scanned clauses in Educe*.
			if sys == bench.EduceStar {
				scanned := counters["clauses_scanned"].(float64)
				passed := counters["clauses_passed"].(float64)
				if scanned == 0 || passed > scanned {
					t.Errorf("selectivity counters scanned=%v passed=%v", scanned, passed)
				}
			}
		})
	}
}

// TestSessionAttributionSumsToKBTotals runs 8 sessions in parallel over
// one MVV knowledge base and checks that the per-session cost counters —
// which attribute each retrieval to exactly one session — sum to the
// knowledge base's shared registry totals. Run under -race in CI, this
// also proves span/counter attribution is race-free.
func TestSessionAttributionSumsToKBTotals(t *testing.T) {
	data := mvv.Generate()
	kb, err := bench.SetupMVVKB(data)
	if err != nil {
		t.Fatal(err)
	}
	defer kb.Close()
	kb.ResetStats() // drop the load traffic; measure only the queries

	const n = 8
	queries := data.Class1[:3]
	costs := make([]obs.QueryStats, n)
	ids := make([]uint64, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := bench.NewMVVSession(kb)
			if err != nil {
				errs[i] = err
				return
			}
			defer s.Close()
			for _, q := range queries {
				if _, err := s.QueryCount(q); err != nil {
					errs[i] = err
					return
				}
			}
			ids[i] = s.ID()
			costs[i] = s.Cost()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}

	seen := map[uint64]bool{}
	var sum obs.QueryStats
	for i := range costs {
		if seen[ids[i]] {
			t.Fatalf("duplicate session ID %d", ids[i])
		}
		seen[ids[i]] = true
		// A session that races behind another on the same goals may be
		// served entirely from the shared decoded-code cache, so only
		// the sum is required to show EDB traffic — but every session
		// must at least have consulted the cache.
		if costs[i].CacheHits+costs[i].CacheMisses == 0 {
			t.Fatalf("session %d recorded no code-cache lookups", i)
		}
		sum.AddQuery(&costs[i])
	}
	if sum.Retrievals == 0 {
		t.Fatal("no EDB retrievals recorded across all sessions")
	}

	snap := kb.Obs().Snapshot()
	total := func(name string) uint64 {
		v, ok := snap[name].(uint64)
		if !ok {
			t.Fatalf("registry missing %s (have %v)", name, kb.Obs().Names())
		}
		return v
	}
	if got := total("edb.retrievals"); got != sum.Retrievals {
		t.Errorf("retrievals: sessions sum to %d, registry has %d", sum.Retrievals, got)
	}
	if got := total("edb.clauses_scanned"); got != sum.ClausesScanned {
		t.Errorf("clauses scanned: sessions sum to %d, registry has %d", sum.ClausesScanned, got)
	}
	if got := total("edb.clauses_passed"); got != sum.ClausesPassed {
		t.Errorf("clauses passed: sessions sum to %d, registry has %d", sum.ClausesPassed, got)
	}
	hits, misses := total("core.codecache.hits"), total("core.codecache.misses")
	if hits+misses != sum.CacheHits+sum.CacheMisses {
		t.Errorf("code cache: sessions sum to %d lookups, registry has %d",
			sum.CacheHits+sum.CacheMisses, hits+misses)
	}
	// Every session must have spent execution time, and the KB totals
	// must reflect real pre-unification (passed ≤ scanned).
	if sum.Phases.Get(obs.PhaseExec) <= 0 {
		t.Error("no exec time attributed")
	}
	if sum.ClausesPassed > sum.ClausesScanned {
		t.Errorf("passed %d > scanned %d", sum.ClausesPassed, sum.ClausesScanned)
	}

	// Sharded buffer-pool schema: the shards gauge matches the pool, the
	// latch metrics exist, and per-shard accesses sum to the pool-wide
	// aggregate (the two views must never drift).
	shards, ok := snap["buffer_pool.shards"].(int64)
	if !ok || shards != int64(kb.Store().Pool().Shards()) {
		t.Errorf("buffer_pool.shards = %v, pool has %d", snap["buffer_pool.shards"], kb.Store().Pool().Shards())
	}
	if _, ok := snap["buffer_pool.latch_waits"].(uint64); !ok {
		t.Errorf("buffer_pool.latch_waits missing (have %v)", kb.Obs().Names())
	}
	var shardAccesses, shardHits uint64
	for i := int64(0); i < shards; i++ {
		shardAccesses += total(fmt.Sprintf("buffer_pool.shard%d.accesses", i))
		shardHits += total(fmt.Sprintf("buffer_pool.shard%d.hits", i))
	}
	if got := total("store.pool.accesses"); shardAccesses != got {
		t.Errorf("per-shard accesses sum to %d, pool-wide counter has %d", shardAccesses, got)
	}
	if got := total("store.pool.hits"); shardHits != got {
		t.Errorf("per-shard hits sum to %d, pool-wide counter has %d", shardHits, got)
	}
}

// TestSessionResetScope checks the reset split: Session.ResetStats must
// not clear the shared knowledge-base counters, KnowledgeBase.ResetStats
// must.
func TestSessionResetScope(t *testing.T) {
	data := mvv.Generate()
	kb, err := bench.SetupMVVKB(data)
	if err != nil {
		t.Fatal(err)
	}
	defer kb.Close()

	s, err := bench.NewMVVSession(kb)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.QueryCount(data.Class1[0]); err != nil {
		t.Fatal(err)
	}
	if kb.DB().Stats().Retrievals == 0 {
		t.Fatal("query should have retrieved from the EDB")
	}

	s.ResetStats()
	if got := kb.DB().Stats().Retrievals; got == 0 {
		t.Error("Session.ResetStats must not clear shared EDB counters")
	}
	if got := s.Cost(); got.Retrievals != 0 || got.Phases.Get(obs.PhaseExec) != 0 {
		t.Errorf("Session.ResetStats must clear session counters: %+v", got)
	}

	kb.ResetStats()
	if got := kb.DB().Stats().Retrievals; got != 0 {
		t.Errorf("KnowledgeBase.ResetStats must clear shared counters, got %d", got)
	}
	if got := kb.Store().Stats().Accesses; got != 0 {
		t.Errorf("KnowledgeBase.ResetStats must clear pool counters, got %d", got)
	}
}

// TestEngineResetStatsResetsBoth pins the single-session wrapper's
// behaviour: Engine.ResetStats clears session and private-KB counters,
// which the benchmark harness relies on between runs.
func TestEngineResetStatsResetsBoth(t *testing.T) {
	data := mvv.Generate()
	e, err := bench.SetupMVV(bench.EduceStar, data)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.QueryCount(data.Class1[0]); err != nil {
		t.Fatal(err)
	}
	e.ResetStats()
	st := e.Stats()
	if st.EDB.Retrievals != 0 || st.IO.Accesses != 0 {
		t.Errorf("Engine.ResetStats must clear shared counters: %+v", st.EDB)
	}
	if st.Cost.Retrievals != 0 || st.Machine.Instructions != 0 {
		t.Errorf("Engine.ResetStats must clear session counters")
	}
}

// TestStatsViewConsistency checks that the legacy PhaseStats view and the
// statistics builtin agree with the Cost vector.
func TestStatsViewConsistency(t *testing.T) {
	data := mvv.Generate()
	e, err := bench.SetupMVV(bench.EduceStar, data)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.QueryCount(data.Class1[0]); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Phases.Retrieve != st.Phases.EDBFetch+st.Phases.PreUnify {
		t.Errorf("Retrieve view %v != EDBFetch %v + PreUnify %v",
			st.Phases.Retrieve, st.Phases.EDBFetch, st.Phases.PreUnify)
	}
	if st.Phases.Exec != st.Cost.Phases.Get(obs.PhaseExec) {
		t.Errorf("Exec view %v != cost %v", st.Phases.Exec, st.Cost.Phases.Get(obs.PhaseExec))
	}
	if st.Cost.ClausesScanned == 0 || st.Cost.ClausesPassed > st.Cost.ClausesScanned {
		t.Errorf("selectivity counters: %+v", st.Cost)
	}
	var _ core.Stats = st // the view type is part of the public surface
}
